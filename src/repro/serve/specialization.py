"""Tiered shape specialization for the serving layer.

The batcher already groups traffic by ``Any``-dim values, so a hot bucket
is, in effect, a static workload that keeps paying the dynamic tax —
shape functions, runtime-sized allocation, symbolic-kernel dispatch. The
:class:`SpecializationManager` closes that gap: it counts per-shape hits,
and once a shape crosses the hot threshold it compiles a static-shape
:class:`Executable` through ``nimble.specialize`` (sharing the dynamic
build's :class:`KernelCache`). Batches whose members all match the
specialized shape exactly are routed to the static tier; everything else
— including the hot shape itself while its compile is in flight — falls
back to the dynamic executable, so correctness never depends on the
tier: outputs are bit-identical either way.

Compile cost is charged on the virtual clock through a **compile-worker
pool** of ``compile_lanes`` lanes. A shape that crosses the threshold
enqueues a pending compile; pending compiles wait in a priority queue
ordered by observed traffic — hit rate since trigger, recomputed at each
lane-free event on the virtual clock — and are bound to the
lowest-numbered earliest-free lane, so replays of one trace are
bit-identical under any lane count. Requests are never stalled by
compilation — they fall back to the dynamic tier until the static one is
ready (``ready_at``).

The specialized-executable cache holds at most ``max_executables``
*resident* entries and evicts under an LRU/LFU-with-decay policy:
per-shape hit scores decay on a virtual-clock half-life
(``decay_half_life_us``), and when a new shape goes hot past the cap the
coldest resident entry — colder than the challenger by the
``eviction_margin`` thrash-protection factor, and never one with an
in-flight compile — loses its slot. An evicted shape re-arms:
its hit count already sits past the threshold, so its next observation
retries the trigger and can recompile into a freed slot (the artifact is
memoised, but the modeled compile cost is charged again — the model
dropped the binary). A shape whose trigger is blocked (cache full,
nothing colder) stays armed the same way and retries on every subsequent
hit, so no hot shape is ever starved by a momentarily full cache.

Compiled artifacts are memoised across simulations, but hit counts,
scores, lane state, pending queues, and ready times reset per replay, so
repeated simulations of one trace are bit-identical.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import repro.nimble as nimble
from repro.codegen.kernels import KernelCache
from repro.hardware import calibration
from repro.hardware.platforms import Platform
from repro.ir.module import IRModule
from repro.serve.batcher import ShapeBucketer
from repro.vm.executable import Executable

ExactKey = Tuple[int, ...]


@dataclass(frozen=True)
class SpecializationEvent:
    """One compile executed by the pool (per simulation).

    ``trigger_us`` is when the shape crossed the threshold and entered the
    pending queue, ``start_us`` when a lane picked it up, ``ready_us``
    when the executable became routable."""

    key: ExactKey
    trigger_us: float
    start_us: float
    ready_us: float
    compile_us: float
    lane: int

    @property
    def queue_us(self) -> float:
        """Time the compile waited in the pending queue for a free lane."""
        return self.start_us - self.trigger_us


@dataclass(frozen=True)
class EvictionEvent:
    """One executable-cache eviction (per simulation)."""

    key: ExactKey
    evicted_us: float
    score: float
    by_key: ExactKey


@dataclass
class _PendingCompile:
    """A triggered compile waiting for a free lane. ``hit_times_us``
    records every observation of the key since the trigger, so priority
    at a lane-free event counts only hits already seen *by that event* —
    a later arrival can never rewrite an earlier binding decision."""

    key: ExactKey
    trigger_us: float
    compile_us: float
    hit_times_us: List[float]

    def hits_by(self, at_us: float) -> int:
        return sum(1 for t in self.hit_times_us if t <= at_us)


class SpecializationManager:
    """Decides when a shape is hot and owns the specialized executables.

    ``threshold`` is the number of observed requests with one exact shape
    before a static executable is compiled for it. ``max_executables``
    caps the *resident* cache; with ``eviction`` enabled (the default)
    the coldest resident entry — by hit score decayed on the
    ``decay_half_life_us`` virtual-clock half-life, ties broken LRU —
    yields its slot to a challenger more than ``eviction_margin`` times
    hotter, while ``eviction=False`` reproduces the
    stop-specializing-beyond-the-cap behaviour.
    ``compile_lanes`` sizes the compile-worker pool. ``compile_us``
    overrides the modeled compile cost; by default it is derived from the
    calibration constants and the number of kernels in the specialized
    executable.
    """

    def __init__(
        self,
        mod: IRModule,
        platform: Platform,
        bucketer: ShapeBucketer,
        kernel_cache: KernelCache,
        threshold: int = 8,
        max_executables: int = 4,
        compile_us: Optional[float] = None,
        entry: str = "main",
        compile_lanes: int = 1,
        eviction: bool = True,
        decay_half_life_us: float = 100_000.0,
        eviction_margin: float = 2.0,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"specialization threshold must be >= 1, got {threshold}")
        if compile_lanes < 1:
            raise ValueError(f"compile_lanes must be >= 1, got {compile_lanes}")
        if decay_half_life_us <= 0:
            raise ValueError(
                f"decay_half_life_us must be > 0, got {decay_half_life_us}"
            )
        if eviction_margin < 1.0:
            raise ValueError(
                f"eviction_margin must be >= 1.0, got {eviction_margin}"
            )
        self.mod = mod
        self.platform = platform
        self.bucketer = bucketer
        self.kernel_cache = kernel_cache
        self.threshold = threshold
        self.max_executables = max_executables
        self.compile_us = compile_us
        self.entry = entry
        self.compile_lanes = compile_lanes
        self.eviction = eviction
        self.decay_half_life_us = decay_half_life_us
        self.eviction_margin = eviction_margin
        # Compiled artifacts are memoised across simulations (compilation
        # is a pure function of module + shape + platform, so reusing them
        # keeps replays bit-identical while skipping redundant work). The
        # *modeled* compile cost is still charged every time a shape
        # (re-)triggers — in the model, eviction dropped the binary.
        self._executables: Dict[ExactKey, Executable] = {}
        self._compile_cost: Dict[ExactKey, float] = {}
        self.reset()

    # ----------------------------------------------------------------- replay
    def reset(self) -> None:
        """Per-simulation state: hit counts, decayed scores, the pending
        queue, lane occupancy, residency, and ready times all restart so
        each replay is independent."""
        self._hits: Counter = Counter()
        self._score: Dict[ExactKey, float] = {}
        self._score_at: Dict[ExactKey, float] = {}
        self._last_hit_us: Dict[ExactKey, float] = {}
        self._ready_at: Dict[ExactKey, float] = {}
        self._resident: Set[ExactKey] = set()
        self._triggered: Set[ExactKey] = set()
        self._pending: List[_PendingCompile] = []
        self._lane_free_us: List[float] = [0.0] * self.compile_lanes
        self.lane_busy_us: List[float] = [0.0] * self.compile_lanes
        self.events: List[SpecializationEvent] = []
        self.evictions: List[EvictionEvent] = []

    # ------------------------------------------------------------------ stats
    @property
    def num_executables(self) -> int:
        """Distinct shapes ever compiled (the cross-simulation memo)."""
        return len(self._executables)

    @property
    def num_resident(self) -> int:
        """Shapes currently holding an executable-cache slot."""
        return len(self._resident)

    @property
    def compile_us_spent(self) -> float:
        """Total modeled compile time executed in this simulation."""
        return sum(e.compile_us for e in self.events)

    @property
    def queue_waits_us(self) -> List[float]:
        """Pending-queue wait of every executed compile, in event order."""
        return [e.queue_us for e in self.events]

    def hits(self, key: ExactKey) -> int:
        return self._hits[key]

    def score(self, key: ExactKey, now_us: float) -> float:
        """The decayed hit score driving eviction, as of *now_us*."""
        raw = self._score.get(key)
        if raw is None:
            return 0.0
        age = now_us - self._score_at[key]
        return raw * 0.5 ** (age / self.decay_half_life_us)

    def is_hot(self, key: ExactKey, now_us: float) -> bool:
        """Is the static executable for this exact shape routable at
        *now_us* (resident, compiled, and its lane has finished)?"""
        if key not in self._resident:
            return False
        ready = self._ready_at.get(key)
        return ready is not None and ready <= now_us

    # ------------------------------------------------------------------- flow
    def observe(self, key: ExactKey, now_us: float) -> None:
        """Record one request arrival with exact dynamic-dim values *key*.

        Crossing the threshold enqueues a compile on the worker pool. The
        check is ``>= threshold``, not an exact hit: a shape whose trigger
        was blocked by a full cache (or that lost its slot to eviction)
        stays armed and retries on every later observation, so a freed
        slot is always picked up. Lane-free events up to *now_us* are
        processed before and after, so a newly enqueued compile can start
        immediately on an idle lane."""
        if not key:
            return  # fully static model: there is nothing to specialize
        self._hits[key] += 1
        self._bump_score(key, now_us)
        self._last_hit_us[key] = now_us
        for job in self._pending:
            if job.key == key:
                job.hit_times_us.append(now_us)
        self._pump(now_us)
        if key not in self._triggered and self._hits[key] >= self.threshold:
            self._try_trigger(key, now_us)
            self._pump(now_us)

    def executable_for(self, key: ExactKey, at_us: float) -> Optional[Executable]:
        """The static executable for a batch whose members all have exact
        shape *key*, or None when the shape is not specialized (or its
        compile has not finished by *at_us* — the caller falls back to
        the dynamic tier)."""
        if not self.is_hot(key, at_us):
            return None
        return self._executables.get(key)

    def drain(self) -> None:
        """Run the pool to completion: bind every still-pending compile to
        a lane as lanes free up. The server calls this when a trace ends
        so queue-wait and lane-utilization stats cover every triggered
        compile (the lanes keep working after the last arrival)."""
        self._pump(math.inf)

    # ------------------------------------------------------------ scheduling
    def _bump_score(self, key: ExactKey, now_us: float) -> None:
        self._score[key] = self.score(key, now_us) + 1.0
        self._score_at[key] = now_us

    def _priority(self, job: _PendingCompile, at_us: float):
        """Queue order at virtual time *at_us*: highest hit rate since
        trigger first (the triggering hit counts, plus every hit observed
        by *at_us* — never later ones), then earliest trigger, then
        smallest key — a total order, so lane binding is deterministic
        and a binding at a lane-free event only depends on what the pool
        had seen by that event. The rate window is floored at the decay
        half-life: without the floor a compile triggered an instant ago
        would measure an enormous rate over its microsecond of existence
        and preempt genuinely hotter long-pending jobs (newest-first in
        disguise); with it, young jobs compete on hits over a common
        window until they age past the half-life."""
        elapsed = max(self.decay_half_life_us, at_us - job.trigger_us)
        rate = (job.hits_by(at_us) + 1) / elapsed
        return (-rate, job.trigger_us, job.key)

    def _pump(self, now_us: float) -> None:
        """Process every lane-free event up to *now_us*: bind the
        highest-priority pending compile to the earliest-free lane
        (lowest id on ties), priorities recomputed at each binding."""
        while self._pending:
            free_us, lane = min(
                (t, i) for i, t in enumerate(self._lane_free_us)
            )
            if free_us > now_us:
                break
            at = max(free_us, min(j.trigger_us for j in self._pending))
            job = min(self._pending, key=lambda j: self._priority(j, at))
            self._pending.remove(job)
            start = max(free_us, job.trigger_us)
            ready = start + job.compile_us
            self._lane_free_us[lane] = ready
            self.lane_busy_us[lane] += job.compile_us
            self._ready_at[job.key] = ready
            self.events.append(
                SpecializationEvent(
                    job.key, job.trigger_us, start, ready, job.compile_us, lane
                )
            )

    def _try_trigger(self, key: ExactKey, now_us: float) -> None:
        """Acquire a cache slot and enqueue the compile; on a full cache,
        evict the coldest resident (if strictly colder than the
        challenger and not in flight) or leave the shape armed to retry."""
        if len(self._resident) >= self.max_executables:
            if not self.eviction:
                return
            victim = self._coldest_evictable(key, now_us)
            if victim is None:
                return
            self._evict(victim, now_us, by=key)
        self._resident.add(key)
        self._triggered.add(key)
        self._ensure_compiled(key)
        self._pending.append(
            _PendingCompile(key, now_us, self._compile_cost[key], [])
        )

    def _coldest_evictable(
        self, challenger: ExactKey, now_us: float
    ) -> Optional[ExactKey]:
        """The resident shape losing its slot: minimal decayed score, ties
        broken by least-recently-hit then key. A shape whose compile is
        still in flight (pending, or bound but not ready) is never
        evicted, and the challenger must be strictly hotter than
        ``eviction_margin`` times the victim's decayed score — comparable
        heat keeps the incumbent, so a mix of continuously-hot shapes
        does not thrash the cache and throw away compile investment (the
        margin at 1.0 degrades to plain strictly-colder)."""
        candidates = [
            k
            for k in self._resident
            if self._ready_at.get(k) is not None and self._ready_at[k] <= now_us
        ]
        if not candidates:
            return None
        victim = min(
            candidates,
            key=lambda k: (self.score(k, now_us), self._last_hit_us.get(k, -math.inf), k),
        )
        if self.score(challenger, now_us) <= self.eviction_margin * self.score(
            victim, now_us
        ):
            return None
        return victim

    def _evict(self, key: ExactKey, now_us: float, by: ExactKey) -> None:
        self._resident.discard(key)
        self._ready_at.pop(key, None)
        # Re-arm: the evicted shape's hit count still sits past the
        # threshold, so its next observation retries the trigger.
        self._triggered.discard(key)
        self.evictions.append(
            EvictionEvent(key, now_us, self.score(key, now_us), by)
        )

    # ---------------------------------------------------------------- compile
    def _ensure_compiled(self, key: ExactKey) -> None:
        if key in self._executables:
            return
        binding = dict(zip(self.bucketer.tokens, key))
        exe, _ = nimble.specialize(
            self.mod,
            self.platform,
            binding=binding,
            kernel_cache=self.kernel_cache,
            entry=self.entry,
        )
        self._executables[key] = exe
        if self.compile_us is not None:
            cost = float(self.compile_us)
        else:
            cost = (
                calibration.SPECIALIZE_BASE_US[self.platform.name]
                + calibration.SPECIALIZE_PER_KERNEL_US[self.platform.name]
                * len(exe.kernels)
            )
        self._compile_cost[key] = cost
