"""Aggregated serving statistics: latency percentiles, throughput, batch
shapes, per-worker utilization, the merged VM profile of every worker
(the Table 4 kernel-vs-others breakdown, fleet-wide), and — with tiered
specialization — the per-tier split: how many requests the static tier
served, at what latency, and what the dynamic tier kept paying in
shape-function time, plus the compile-pool view: per-lane busy time and
utilization, pending-queue wait percentiles, and executable-cache
eviction counts."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.reporting import format_table, percentile
from repro.serve.request import Response
from repro.vm.profiler import VMProfile


@dataclass
class ServeReport:
    responses: List[Response] = field(default_factory=list)
    worker_busy_us: List[float] = field(default_factory=list)
    worker_batches: List[int] = field(default_factory=list)
    profile_dynamic: VMProfile = field(default_factory=VMProfile)
    profile_specialized: VMProfile = field(default_factory=VMProfile)
    profile_batched: VMProfile = field(default_factory=VMProfile)
    profile_partial: VMProfile = field(default_factory=VMProfile)
    specialize_compile_us: float = 0.0
    # Distinct shapes compiled in *this* simulation / still holding a
    # cache slot when it ended (the two differ once eviction recycles
    # slots).
    num_specialized_executables: int = 0
    num_resident_executables: int = 0
    specialize_lane_busy_us: List[float] = field(default_factory=list)
    specialize_queue_waits_us: List[float] = field(default_factory=list)
    specialize_evictions: int = 0
    # First trigger to last compile-ready: the window the pool was active.
    specialize_pool_span_us: float = 0.0
    # Artifact-store split: how many variants were restored from disk
    # vs compiled fresh, the deserialize charge restores cost, and how
    # many store blobs failed validation and were skipped.
    specialize_restored: int = 0
    specialize_fresh_compiles: int = 0
    specialize_restore_us: float = 0.0
    store_rejects: int = 0
    # The subset of store_rejects that deserialized fine but failed
    # static verification (repro.analysis) — split out because they
    # indicate a writer bug or tampering, not volume corruption.
    verify_rejects: int = 0
    # Staged-compilation split of specialize_compile_us: the
    # once-per-simulation shape-independent prefix charge vs the
    # per-variant compile lane time. Under the monolithic pipeline
    # (specialize_staged=False) the prefix is zero and the suffix
    # equals the full fresh-compile charge.
    specialize_prefix_us: float = 0.0
    specialize_suffix_us: float = 0.0
    # Guarded partial shapes: batch members routed to a partial variant
    # whose entry guard rejected them and who therefore transparently
    # re-ran on the dynamic VM (their response tier reads "dynamic").
    guard_deopts: int = 0
    # Profile-guided predictive specialization: variants the manager
    # pre-armed (compiled or store-restored) at virtual time 0 from the
    # persisted shape profile, and static-tier requests served off
    # those pre-armed variants.
    predictive_compiles: int = 0
    predictive_hits: int = 0
    # Device streams the executables were scheduled for (after platform
    # clamping). 1 means single-stream builds — the stream section of
    # the report collapses to a single row and no sync events exist.
    device_streams: int = 1

    # ----------------------------------------------------------------- counts
    @property
    def num_requests(self) -> int:
        return len(self.responses)

    @property
    def num_batches(self) -> int:
        return sum(self.worker_batches)

    @property
    def batch_histogram(self) -> Dict[int, int]:
        """{batch_size: number of batches of that size}."""
        sizes = Counter()
        for r in self.responses:
            sizes[r.batch_size] += 1
        # Each batch of size k contributes k responses.
        return {k: v // k for k, v in sorted(sizes.items())}

    @property
    def mean_batch_size(self) -> float:
        if self.num_batches == 0:
            return 0.0
        return self.num_requests / self.num_batches

    @property
    def bucket_keys(self) -> List[Tuple[int, ...]]:
        return sorted({r.bucket_key for r in self.responses})

    # ------------------------------------------------------------------ tiers
    @property
    def specialized_hits(self) -> int:
        """Requests served by a static executable (member-wise, batched,
        or guarded-partial — all pay zero shape functions and dispatch
        on their bound dims)."""
        return sum(
            1
            for r in self.responses
            if r.tier in ("specialized", "batched", "partial")
        )

    @property
    def specialized_hit_rate(self) -> float:
        """Fraction of requests the static tiers served."""
        if not self.responses:
            return 0.0
        return self.specialized_hits / len(self.responses)

    @property
    def batched_hits(self) -> int:
        """Requests served by the batch-specialized tier (a full bucket
        executed as one stacked VM call)."""
        return sum(1 for r in self.responses if r.tier == "batched")

    @property
    def batched_hit_rate(self) -> float:
        """Fraction of requests the batched tier served."""
        if not self.responses:
            return 0.0
        return self.batched_hits / len(self.responses)

    @property
    def partial_hits(self) -> int:
        """Requests served by a guarded partial variant (guard passed —
        deopted members count as dynamic, see ``guard_deopts``)."""
        return sum(1 for r in self.responses if r.tier == "partial")

    @property
    def partial_hit_rate(self) -> float:
        """Fraction of requests the guarded-partial tier served."""
        if not self.responses:
            return 0.0
        return self.partial_hits / len(self.responses)

    def tier_profile(self, tier: str) -> VMProfile:
        return {
            "dynamic": self.profile_dynamic,
            "specialized": self.profile_specialized,
            "batched": self.profile_batched,
            "partial": self.profile_partial,
        }[tier]

    def tier_latencies_us(self, tier: str) -> List[float]:
        return [r.latency_us for r in self.responses if r.tier == tier]

    def tier_latency_percentile_us(self, tier: str, q: float) -> float:
        lats = self.tier_latencies_us(tier)
        return percentile(lats, q) if lats else 0.0

    def tier_mean_latency_us(self, tier: str) -> float:
        lats = self.tier_latencies_us(tier)
        return sum(lats) / len(lats) if lats else 0.0

    # ----------------------------------------------------------- compile pool
    @property
    def num_compile_lanes(self) -> int:
        return len(self.specialize_lane_busy_us)

    @property
    def compile_lane_utilization(self) -> List[float]:
        """Busy fraction of the pool-active window (first trigger to last
        compile-ready), per lane. Lanes can keep compiling after the last
        response lands (the end-of-trace drain), so the serving span
        would be the wrong denominator — this one bounds every lane's
        utilization to [0, 1]."""
        span = self.specialize_pool_span_us
        if span <= 0:
            return [0.0 for _ in self.specialize_lane_busy_us]
        return [busy / span for busy in self.specialize_lane_busy_us]

    @property
    def mean_compile_queue_wait_us(self) -> float:
        """Mean time a triggered compile waited for a free lane."""
        waits = self.specialize_queue_waits_us
        return sum(waits) / len(waits) if waits else 0.0

    def compile_queue_wait_percentile_us(self, q: float) -> float:
        waits = self.specialize_queue_waits_us
        return percentile(waits, q) if waits else 0.0

    # ---------------------------------------------------------------- profile
    @property
    def profile(self) -> VMProfile:
        """All tiers merged (what the pre-tiering report exposed)."""
        merged = VMProfile()
        merged.merge(self.profile_dynamic)
        merged.merge(self.profile_specialized)
        merged.merge(self.profile_batched)
        merged.merge(self.profile_partial)
        return merged

    # ---------------------------------------------------------------- streams
    @property
    def stream_busy_us(self) -> Dict[int, float]:
        """Fleet-wide device-kernel time per stream, all tiers merged."""
        merged = self.profile
        return {s: merged.stream_kernel_us[s] for s in sorted(merged.stream_kernel_us)}

    @property
    def stream_utilization(self) -> Dict[int, float]:
        """Each stream's share of total device-kernel time (sums to 1
        when any kernel ran). A perfectly balanced N-stream schedule
        shows 1/N per stream."""
        busy = self.stream_busy_us
        total = sum(busy.values())
        if total <= 0:
            return {s: 0.0 for s in busy}
        return {s: b / total for s, b in busy.items()}

    @property
    def sync_events(self) -> int:
        return self.profile.sync_events

    @property
    def sync_waits(self) -> int:
        return self.profile.sync_waits

    @property
    def sync_stall_us(self) -> float:
        return self.profile.sync_stall_us

    # ----------------------------------------------------------------- timing
    @property
    def latencies_us(self) -> List[float]:
        return [r.latency_us for r in self.responses]

    @property
    def span_us(self) -> float:
        """First arrival to last completion."""
        if not self.responses:
            return 0.0
        start = min(r.arrival_us for r in self.responses)
        end = max(r.finish_us for r in self.responses)
        return end - start

    @property
    def throughput_rps(self) -> float:
        """Requests per (virtual) second over the busy span."""
        if self.span_us <= 0:
            return 0.0
        return self.num_requests / self.span_us * 1e6

    def latency_percentile_us(self, q: float) -> float:
        lats = self.latencies_us
        return percentile(lats, q) if lats else 0.0

    @property
    def p50_us(self) -> float:
        return self.latency_percentile_us(50.0)

    @property
    def p99_us(self) -> float:
        return self.latency_percentile_us(99.0)

    @property
    def mean_latency_us(self) -> float:
        lats = self.latencies_us
        return sum(lats) / len(lats) if lats else 0.0

    @property
    def max_latency_us(self) -> float:
        return max(self.latencies_us) if self.latencies_us else 0.0

    @property
    def worker_utilization(self) -> List[float]:
        """Busy fraction of the serving span, per worker."""
        span = self.span_us
        if span <= 0:
            return [0.0 for _ in self.worker_busy_us]
        return [busy / span for busy in self.worker_busy_us]

    # -------------------------------------------------------------- rendering
    def format(self, title: str = "Serving report") -> str:
        rows = [
            ["requests", float(self.num_requests)],
            ["batches", float(self.num_batches)],
            ["mean batch size", self.mean_batch_size],
            ["shape buckets", float(len(self.bucket_keys))],
            ["throughput (req/s)", self.throughput_rps],
            ["latency p50 (µs)", self.p50_us],
            ["latency p99 (µs)", self.p99_us],
            ["latency max (µs)", self.max_latency_us],
            ["kernel time (µs)", self.profile.kernel_time_us],
        ]
        main = format_table(title, rows, ["metric", "value"])
        sections = [main]
        if self.specialized_hits or self.num_specialized_executables:
            tiers = ["dynamic", "specialized"]
            if self.batched_hits:
                tiers.append("batched")
            if self.partial_hits:
                tiers.append("partial")
            tier_rows = []
            for tier in tiers:
                prof = self.tier_profile(tier)
                tier_rows.append(
                    [
                        tier,
                        float(len(self.tier_latencies_us(tier))),
                        self.tier_latency_percentile_us(tier, 50.0),
                        self.tier_latency_percentile_us(tier, 99.0),
                        prof.shape_func_time_us,
                    ]
                )
            staged_note = ""
            if self.specialize_prefix_us:
                staged_note = (
                    f" (prefix {self.specialize_prefix_us:.0f} µs + "
                    f"suffix {self.specialize_suffix_us:.0f} µs)"
                )
            store_note = ""
            if self.specialize_restored or self.store_rejects:
                store_note = (
                    f", {self.specialize_restored} restored from store "
                    f"({self.specialize_restore_us:.0f} µs deserialize, "
                    f"{self.store_rejects} reject(s), "
                    f"{self.verify_rejects} failed verification)"
                )
            predictive_note = ""
            if self.predictive_compiles:
                predictive_note = (
                    f", {self.predictive_compiles} predictive pre-arm(s) "
                    f"serving {self.predictive_hits} hit(s)"
                )
            partial_note = ""
            if self.partial_hits or self.guard_deopts:
                partial_note = (
                    f", partial {100.0 * self.partial_hit_rate:.1f}% "
                    f"with {self.guard_deopts} guard deopt(s)"
                )
            sections.append(
                format_table(
                    f"Tiers — specialized hit rate "
                    f"{100.0 * self.specialized_hit_rate:.1f}% "
                    f"(batched {100.0 * self.batched_hit_rate:.1f}%), "
                    f"{self.num_specialized_executables} compiled / "
                    f"{self.num_resident_executables} resident static exe(s), "
                    f"compile {self.specialize_compile_us:.0f} µs"
                    f"{staged_note}, "
                    f"{self.specialize_evictions} eviction(s)"
                    f"{store_note}{predictive_note}{partial_note}",
                    tier_rows,
                    ["tier", "requests", "p50 µs", "p99 µs", "shape-func µs"],
                )
            )
            if self.specialize_lane_busy_us:
                lane_rows = [
                    [i, busy, 100.0 * util]
                    for i, (busy, util) in enumerate(
                        zip(
                            self.specialize_lane_busy_us,
                            self.compile_lane_utilization,
                        )
                    )
                ]
                sections.append(
                    format_table(
                        f"Compile pool — queue wait mean "
                        f"{self.mean_compile_queue_wait_us:.0f} µs, "
                        f"p50 {self.compile_queue_wait_percentile_us(50.0):.0f} µs, "
                        f"p99 {self.compile_queue_wait_percentile_us(99.0):.0f} µs",
                        lane_rows,
                        ["lane", "busy µs", "util %"],
                    )
                )
        if self.device_streams > 1:
            merged = self.profile
            stream_rows = [
                [
                    s,
                    busy,
                    float(merged.stream_kernel_invocations[s]),
                    100.0 * self.stream_utilization[s],
                ]
                for s, busy in self.stream_busy_us.items()
            ]
            sections.append(
                format_table(
                    f"Streams ({self.device_streams}) — "
                    f"{self.sync_events} event(s), "
                    f"{self.sync_waits} wait(s), "
                    f"stall {self.sync_stall_us:.0f} µs",
                    stream_rows,
                    ["stream", "busy µs", "kernels", "share %"],
                )
            )
        hist_rows = [
            [size, count] for size, count in self.batch_histogram.items()
        ]
        sections.append(
            format_table(
                "Batch-size histogram", hist_rows, ["batch size", "batches"]
            )
        )
        util_rows = [
            [i, busy, 100.0 * util]
            for i, (busy, util) in enumerate(
                zip(self.worker_busy_us, self.worker_utilization)
            )
        ]
        sections.append(
            format_table("Workers", util_rows, ["worker", "busy µs", "util %"])
        )
        return "\n\n".join(sections)


def build_report(
    responses: Sequence[Response],
    workers,
    specializer=None,
    extra_store_rejects: int = 0,
    extra_verify_rejects: int = 0,
    device_streams: int = 1,
) -> ServeReport:
    """Assemble a ServeReport from responses + the worker pool (and the
    specialization manager, when tiering is enabled).
    ``extra_store_rejects`` folds in store rejects the manager never
    sees — the server's startup kernel-cache load — so the report's
    counter covers the whole store surface; ``extra_verify_rejects``
    does the same for the verification-failure subset."""
    profile_dynamic = VMProfile()
    profile_specialized = VMProfile()
    profile_batched = VMProfile()
    profile_partial = VMProfile()
    for worker in workers:
        profile_dynamic.merge(worker.vm.profile)
        profile_specialized.merge(worker.specialized_profile)
        profile_batched.merge(worker.batched_profile)
        profile_partial.merge(worker.partial_profile)
    return ServeReport(
        responses=sorted(responses, key=lambda r: r.rid),
        worker_busy_us=[w.busy_us for w in workers],
        worker_batches=[w.batches_run for w in workers],
        profile_dynamic=profile_dynamic,
        profile_specialized=profile_specialized,
        profile_batched=profile_batched,
        profile_partial=profile_partial,
        guard_deopts=sum(w.deopts for w in workers),
        predictive_compiles=(
            specializer.predictive_compiles if specializer is not None else 0
        ),
        predictive_hits=(
            specializer.predictive_hits if specializer is not None else 0
        ),
        specialize_compile_us=(
            specializer.compile_us_spent if specializer is not None else 0.0
        ),
        num_specialized_executables=(
            len({e.key for e in specializer.events})
            if specializer is not None
            else 0
        ),
        num_resident_executables=(
            specializer.num_resident if specializer is not None else 0
        ),
        specialize_lane_busy_us=(
            list(specializer.lane_busy_us) if specializer is not None else []
        ),
        specialize_queue_waits_us=(
            specializer.queue_waits_us if specializer is not None else []
        ),
        specialize_evictions=(
            len(specializer.evictions) if specializer is not None else 0
        ),
        specialize_pool_span_us=(
            max(e.ready_us for e in specializer.events)
            - min(e.trigger_us for e in specializer.events)
            if specializer is not None and specializer.events
            else 0.0
        ),
        specialize_restored=(
            specializer.num_restored if specializer is not None else 0
        ),
        specialize_fresh_compiles=(
            specializer.num_fresh_compiles if specializer is not None else 0
        ),
        specialize_restore_us=(
            specializer.restore_us_spent if specializer is not None else 0.0
        ),
        store_rejects=(
            specializer.store_rejects if specializer is not None else 0
        )
        + extra_store_rejects,
        verify_rejects=(
            specializer.verify_rejects if specializer is not None else 0
        )
        + extra_verify_rejects,
        specialize_prefix_us=(
            specializer.prefix_us_spent if specializer is not None else 0.0
        ),
        specialize_suffix_us=(
            specializer.suffix_us_spent if specializer is not None else 0.0
        ),
        device_streams=max(1, int(device_streams)),
    )
