"""Fleet-wide serving statistics: per-tenant and per-replica views.

A :class:`FleetReport` wraps the per-replica
:class:`~repro.serve.ServeReport` objects a simulation produced and adds
the router's own bookkeeping — admission decisions, routing outcomes,
cross-replica store-warm restores, and GC activity. Two views matter:

- **per tenant** — latency percentiles, SLO attainment against the
  tenant's deadline class, and admit/reject counts (the admission
  control surface);
- **per replica** — request counts, latency percentiles, specialized
  hit rates, and store counters (the routing/affinity surface).

:meth:`FleetReport.counters` flattens every discrete outcome — reject
rids, routed counts, affinity hits, fleet restores, GC decisions — into
one comparable dict. The fleet determinism contract (docs/fleet.md) is
stated in terms of it: two simulations of the same trace produce equal
``counters()`` and bitwise-equal response outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.harness.reporting import format_table, percentile
from repro.serve.report import ServeReport
from repro.serve.request import Response
from repro.store.gc import GCReport


@dataclass
class TenantStats:
    """One tenant's outcome: what got in, what it cost, what was shed."""

    name: str
    deadline_us: float = math.inf
    admitted: int = 0
    rejected: int = 0
    latencies_us: List[float] = field(default_factory=list)

    @property
    def offered(self) -> int:
        return self.admitted + self.rejected

    @property
    def p50_us(self) -> float:
        return percentile(self.latencies_us, 50.0) if self.latencies_us else 0.0

    @property
    def p99_us(self) -> float:
        return percentile(self.latencies_us, 99.0) if self.latencies_us else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of *served* responses inside the deadline class (an
        infinite deadline scores 1.0; rejected requests are not counted
        here — they are the admission-control column, not a latency
        outcome)."""
        if not self.latencies_us:
            return 1.0
        met = sum(1 for lat in self.latencies_us if lat <= self.deadline_us)
        return met / len(self.latencies_us)


@dataclass
class FleetReport:
    """Everything one fleet simulation produced."""

    replica_reports: List[ServeReport] = field(default_factory=list)
    tenants: Dict[str, TenantStats] = field(default_factory=dict)
    # Routing outcomes, indexed by replica id.
    routed: List[int] = field(default_factory=list)
    # Admitted requests routed by shape affinity (the target replica was
    # already serving — or compiling — the exact shape), vs fallback.
    affinity_hits: int = 0
    # Which routing policy produced this report ("affinity" /
    # "least_loaded" / "random").
    routing: str = "affinity"
    # Rejected request ids, in arrival order (replay-comparable; the
    # per-tenant split lives in `tenants`).
    rejected_rids: Tuple[int, ...] = ()
    # Cross-replica store warmth, indexed by replica id: variants this
    # replica restored that a *sibling* compiled and persisted during
    # this same simulation.
    fleet_restores: List[int] = field(default_factory=list)
    # GC activity, one report per collection, in firing order.
    gc_reports: List[GCReport] = field(default_factory=list)
    # Chaos accounting: stalls applied, blobs corrupted, and corruption
    # events that found no blob of their kind to target.
    chaos_stalls: int = 0
    chaos_corruptions: int = 0
    chaos_noops: int = 0

    # ----------------------------------------------------------------- volume
    @property
    def num_replicas(self) -> int:
        return len(self.replica_reports)

    @property
    def responses(self) -> List[Response]:
        """Every served response, merged across replicas, by rid."""
        merged: List[Response] = []
        for report in self.replica_reports:
            merged.extend(report.responses)
        return sorted(merged, key=lambda r: r.rid)

    @property
    def admitted(self) -> int:
        return sum(t.admitted for t in self.tenants.values())

    @property
    def rejected(self) -> int:
        return sum(t.rejected for t in self.tenants.values())

    @property
    def affinity_rate(self) -> float:
        """Fraction of admitted requests the affinity rule placed (vs
        the least-loaded fallback). Only meaningful under the
        "affinity" policy; 0.0 under the others."""
        if self.admitted == 0:
            return 0.0
        return self.affinity_hits / self.admitted

    # ------------------------------------------------------------------ store
    @property
    def total_fleet_restores(self) -> int:
        return sum(self.fleet_restores)

    @property
    def specialized_hits(self) -> int:
        return sum(r.specialized_hits for r in self.replica_reports)

    @property
    def specialized_hit_rate(self) -> float:
        served = sum(r.num_requests for r in self.replica_reports)
        if served == 0:
            return 0.0
        return self.specialized_hits / served

    @property
    def store_rejects(self) -> int:
        return sum(r.store_rejects for r in self.replica_reports)

    @property
    def specialize_compile_us(self) -> float:
        """Total fresh-compile lane charge across the fleet — the "equal
        compile charge" axis routing policies are compared on."""
        return sum(r.specialize_compile_us for r in self.replica_reports)

    # --------------------------------------------------------------------- gc
    @property
    def gc_pruned(self) -> int:
        return sum(g.pruned_count for g in self.gc_reports)

    @property
    def gc_kept_referenced(self) -> int:
        return sum(g.kept_referenced for g in self.gc_reports)

    @property
    def gc_malformed(self) -> int:
        """Malformed store names at the LAST collection (an inventory
        level, not a cumulative count)."""
        return self.gc_reports[-1].malformed if self.gc_reports else 0

    # ----------------------------------------------------------- determinism
    def counters(self) -> dict:
        """Every discrete outcome of the simulation, flattened for
        replay-equality assertions. Excludes response *outputs* (compare
        those bitwise, per rid) and anything disk-dependent."""
        return {
            "routing": self.routing,
            "routed": tuple(self.routed),
            "affinity_hits": self.affinity_hits,
            "rejected_rids": self.rejected_rids,
            "fleet_restores": tuple(self.fleet_restores),
            "tenants": {
                name: (t.admitted, t.rejected, tuple(t.latencies_us))
                for name, t in sorted(self.tenants.items())
            },
            "response_rids": tuple(r.rid for r in self.responses),
            "response_tiers": tuple(r.tier for r in self.responses),
            "response_finish_us": tuple(r.finish_us for r in self.responses),
            "replica_specialized_hits": tuple(
                r.specialized_hits for r in self.replica_reports
            ),
            "replica_fresh_compiles": tuple(
                r.specialize_fresh_compiles for r in self.replica_reports
            ),
            "replica_restored": tuple(
                r.specialize_restored for r in self.replica_reports
            ),
            "replica_store_rejects": tuple(
                r.store_rejects for r in self.replica_reports
            ),
            "replica_verify_rejects": tuple(
                r.verify_rejects for r in self.replica_reports
            ),
            "gc": tuple(g.counters() for g in self.gc_reports),
            "chaos": (
                self.chaos_stalls,
                self.chaos_corruptions,
                self.chaos_noops,
            ),
        }

    # -------------------------------------------------------------- rendering
    def format(self, title: str = "Fleet report") -> str:
        head = [
            ["replicas", float(self.num_replicas)],
            ["admitted", float(self.admitted)],
            ["rejected", float(self.rejected)],
            ["affinity rate %", 100.0 * self.affinity_rate],
            ["specialized hit rate %", 100.0 * self.specialized_hit_rate],
            ["fleet (sibling) restores", float(self.total_fleet_restores)],
            ["compile charge (µs)", self.specialize_compile_us],
            ["gc pruned", float(self.gc_pruned)],
            ["gc kept (referenced)", float(self.gc_kept_referenced)],
        ]
        sections = [
            format_table(f"{title} [{self.routing}]", head, ["metric", "value"])
        ]
        tenant_rows = [
            [
                t.name,
                float(t.admitted),
                float(t.rejected),
                t.p50_us,
                t.p99_us,
                100.0 * t.slo_attainment,
            ]
            for t in sorted(self.tenants.values(), key=lambda t: t.name)
        ]
        if tenant_rows:
            sections.append(
                format_table(
                    "Tenants",
                    tenant_rows,
                    ["tenant", "admitted", "rejected", "p50 µs", "p99 µs", "SLO %"],
                )
            )
        replica_rows = [
            [
                i,
                float(r.num_requests),
                r.p50_us,
                r.p99_us,
                100.0 * r.specialized_hit_rate,
                float(restores),
            ]
            for i, (r, restores) in enumerate(
                zip(self.replica_reports, self.fleet_restores)
            )
        ]
        sections.append(
            format_table(
                "Replicas",
                replica_rows,
                ["replica", "requests", "p50 µs", "p99 µs", "hit %", "warmed"],
            )
        )
        return "\n\n".join(sections)
