"""The fleet's shared, replay-resettable model of the artifact store.

A fleet of replicas writes to ONE on-disk :class:`~repro.store.ArtifactStore`,
and three different consumers need to agree on what that store holds *as
of a virtual timestamp*:

- a sibling replica deciding whether a triggered shape can be **restored**
  (some other replica compiled and persisted it earlier this simulation)
  instead of compiled fresh;
- the **garbage collector**, whose age/LRU decisions must replay
  bit-identically — so they are made against this model's inventory and
  usage times, never against raw ``mtime``s or whatever a previous replay
  left on disk;
- the replicas' own re-trigger paths, which must notice when GC pruned a
  blob they persisted (the binary is gone: recompile and re-persist, do
  not "restore" from a memory the model says was reclaimed).

The view is the fleet-level analogue of the single-server
``_store_keys_at_init`` freeze (``serve/specialization.py``): the
initial inventory is snapshotted **once, at fleet construction**, and
everything else — writes, restores, prunes — is per-simulation state
that :meth:`reset` clears. Replaying a trace therefore rebuilds the
identical sequence of store decisions no matter what earlier replays
wrote to or deleted from the directory.

Entries are ``(kind, key)`` pairs, ``kind`` one of ``"exe"`` /
``"prefix"`` / ``"profile"`` — the three blob families of the store
layout (``.nmbl`` / ``.nmblp`` / ``.nmblprof``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.store import ArtifactStore

# One store entry: ("exe", key) -> artifacts/<key>.nmbl, and so on.
StoreEntry = Tuple[str, str]

KINDS = ("exe", "prefix", "profile")


class FleetStoreView:
    """Virtual-time bookkeeping of one shared artifact store.

    All mutation happens through ``record_*`` calls made by the replicas
    (on put/restore) and the router (on GC prune); queries are pure
    reads. Nothing here touches the disk — the view is the *model*, the
    :class:`~repro.store.ArtifactStore` is the mechanism.
    """

    def __init__(self, store: ArtifactStore) -> None:
        # The frozen initial inventory: what a previous process (or
        # fleet) left behind. Snapshotted once so every simulation of
        # this fleet starts from the same baseline.
        self._init_entries = frozenset(
            [("exe", k) for k in store.keys()]
            + [("prefix", k) for k in store.prefix_keys()]
            + [("profile", k) for k in store.profile_keys()]
        )
        self.reset()

    # ----------------------------------------------------------------- replay
    def reset(self) -> None:
        """Per-simulation state: writes, prunes, and usage times."""
        # entry -> (write time, writer replica id); only writes made
        # during the current simulation.
        self._written: Dict[StoreEntry, Tuple[float, int]] = {}
        # entry -> prune time of the LAST prune (a later re-put revives
        # the entry; `present` compares the two timestamps' order via
        # state updates, not arithmetic, so re-put after prune wins).
        self._pruned: Dict[StoreEntry, float] = {}
        # entry -> last time any replica read or wrote it (LRU input).
        self._last_use: Dict[StoreEntry, float] = {}

    # -------------------------------------------------------------- mutation
    def record_put(self, kind: str, key: str, now_us: float, replica_id: int) -> None:
        """A replica persisted a blob at *now_us*: it is present from now
        on (reviving it if GC had pruned it) and owned by *replica_id*
        for cross-replica restore attribution."""
        entry = (kind, key)
        self._written[entry] = (now_us, replica_id)
        self._pruned.pop(entry, None)
        self._last_use[entry] = now_us

    def record_use(self, kind: str, key: str, now_us: float) -> None:
        """A replica restored/read a blob at *now_us* (LRU freshness)."""
        entry = (kind, key)
        prev = self._last_use.get(entry)
        if prev is None or now_us > prev:
            self._last_use[entry] = now_us

    def record_prune(self, kind: str, key: str, now_us: float) -> None:
        """The GC reclaimed a blob at *now_us*: absent until re-written."""
        entry = (kind, key)
        self._pruned[entry] = now_us
        self._written.pop(entry, None)

    # --------------------------------------------------------------- queries
    def present(self, kind: str, key: str) -> bool:
        """Does the model say this blob is on disk right now? Initial
        blobs count until pruned; written blobs count from their write
        (re-put after prune revives, prune after put reclaims — the
        record_* calls keep only the latest state)."""
        entry = (kind, key)
        if entry in self._written:
            return True
        return entry in self._init_entries and entry not in self._pruned

    def origin(self, kind: str, key: str) -> Optional[int]:
        """The replica that wrote this blob *during this simulation*, or
        None (initial inventory, pruned, or never written). This is what
        makes a sibling's fresh compile restorable fleet-wide: a
        non-None origin different from the asking replica is a
        cross-replica warm hit."""
        found = self._written.get((kind, key))
        return found[1] if found is not None else None

    def last_use_us(self, kind: str, key: str) -> Optional[float]:
        """Latest modeled read/write of the blob this simulation, or
        None — initial blobs nobody touched have no age anchor and sort
        as the oldest possible LRU candidates."""
        return self._last_use.get((kind, key))

    def inventory(self) -> List[StoreEntry]:
        """The modeled store contents, sorted for deterministic
        iteration: initial entries not yet pruned plus everything
        written this simulation."""
        live = {
            e
            for e in self._init_entries
            if e not in self._pruned and e not in self._written
        }
        live.update(self._written)
        return sorted(live)
