"""Fleet-scale serving: routed replicas over one shared artifact store.

Nimble's economics (PAPER.md §4) are compile-once, dispatch-cheaply —
and at fleet scale "once" should mean once *per fleet*, not once per
replica. ``repro.fleet`` builds that layer on top of ``repro.serve``
and ``repro.store``:

- :class:`FleetRouter` fronts N :class:`~repro.serve.InferenceServer`
  replicas on one virtual timeline, with shape-affinity routing,
  per-tenant token-bucket admission control (:class:`TenantSpec`), and
  deterministic chaos injection (:class:`ReplicaStall`,
  :class:`CorruptBlob`).
- :class:`FleetStoreView` models the shared store so a fresh compile on
  any replica is restorable by every sibling at the deserialize charge,
  and so :class:`~repro.store.StoreGC` decisions replay bit-identically.
- :class:`FleetReport` surfaces the per-tenant / per-replica outcome,
  with :meth:`FleetReport.counters` as the replay-equality surface.

The determinism contract, the chaos battery, and the differential
fleet-vs-single-server equivalence are specified in ``docs/fleet.md``
and enforced by ``tests/test_fleet.py``.
"""

from repro.fleet.chaos import CorruptBlob, ReplicaStall
from repro.fleet.report import FleetReport, TenantStats
from repro.fleet.router import ROUTING_POLICIES, FleetConfig, FleetRouter
from repro.fleet.tenancy import TenantSpec, TokenBucket
from repro.fleet.view import FleetStoreView

__all__ = [
    "CorruptBlob",
    "FleetConfig",
    "FleetReport",
    "FleetRouter",
    "FleetStoreView",
    "ReplicaStall",
    "ROUTING_POLICIES",
    "TenantSpec",
    "TenantStats",
    "TokenBucket",
]
