"""Per-tenant SLOs and token-bucket admission control.

Each tenant of a fleet names a traffic source (``Request.tenant``) and
carries two pieces of policy:

- a **deadline class** (``deadline_us``) — the latency SLO the
  :class:`~repro.fleet.FleetReport` scores attainment against. The SLO
  is *reported*, not enforced: the batcher never reorders by deadline
  (that would change single-server-equivalent behavior), the report
  just says what fraction of the tenant's responses met it.
- a **token-bucket rate limit** (``rate_per_s`` / ``burst``) — the
  admission-control budget. An over-budget arrival is rejected at the
  router and *counted*, never queued: graceful degradation means the
  tenant that bursts past its budget sheds its own excess load instead
  of inflating every tenant's queues.

The bucket runs on virtual time, so admission decisions are a pure
function of the trace: replaying the same arrivals yields bit-identical
admit/reject sequences (the fleet determinism contract, docs/fleet.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's policy. The defaults are the no-policy tenant:
    unlimited rate, no deadline — exactly how a standalone
    :class:`~repro.serve.InferenceServer` treats all traffic."""

    name: str
    # SLO target on end-to-end latency (arrival -> batch completion).
    # inf = no deadline class; attainment reports as 1.0.
    deadline_us: float = math.inf
    # Token refill rate in requests per virtual second; None = unlimited
    # (admission always passes), 0.0 = nothing beyond the initial burst.
    rate_per_s: Optional[float] = None
    # Bucket capacity: how many requests may arrive back-to-back before
    # the rate starts binding.
    burst: int = 1

    def __post_init__(self) -> None:
        if self.deadline_us <= 0:
            raise ValueError(
                f"tenant {self.name!r}: deadline_us must be > 0"
            )
        if self.rate_per_s is not None and self.rate_per_s < 0:
            raise ValueError(
                f"tenant {self.name!r}: rate_per_s must be >= 0"
            )
        if self.burst < 1:
            raise ValueError(f"tenant {self.name!r}: burst must be >= 1")


class TokenBucket:
    """A deterministic token bucket on the virtual clock.

    Starts full (``burst`` tokens); each admitted request spends one
    token; tokens refill continuously at ``rate_per_s``. All arithmetic
    is on virtual microseconds, and :meth:`reset` restores the full
    bucket, so every replay sees the same admit/reject sequence.
    """

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.reset()

    def reset(self) -> None:
        self._tokens = float(self.spec.burst)
        self._at = 0.0

    def admit(self, now_us: float) -> bool:
        """Spend a token for an arrival at *now_us* if the budget allows.
        Arrivals are processed in trace order, so *now_us* never moves
        backwards; refill happens lazily at each query."""
        if self.spec.rate_per_s is None:
            return True
        if now_us > self._at:
            self._tokens = min(
                float(self.spec.burst),
                self._tokens + (now_us - self._at) * self.spec.rate_per_s / 1e6,
            )
            self._at = now_us
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False
