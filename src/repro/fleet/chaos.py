"""Deterministic fault injection for fleet simulations.

Chaos events are *inputs*: timestamped, declarative faults the router
merges into its event loop exactly like arrivals, so an injected fault
is as replayable as the trace itself. Two families cover the fleet's
failure surface:

- :class:`ReplicaStall` — one replica's workers freeze for a window of
  virtual time (a GC pause, a noisy neighbor, a hiccuping device). The
  stall advances the replica's worker clocks; everything downstream —
  batches queueing longer, the router's least-loaded signal steering
  traffic elsewhere — falls out of the existing timing model.
- :class:`CorruptBlob` — a blob in the shared store is overwritten with
  garbage (bit rot, a torn device, a hostile writer). The *n*-th entry
  of the store model's inventory for a kind is targeted, so the choice
  is a pure function of the trace (the model's inventory is
  replay-identical; the raw directory listing is not). Readers hit the
  store's paranoid validation and reject-and-count — one replica's
  corrupted write must never crash a sibling.

Corruption writes a deterministic garbage payload derived from the key,
so replaying the event byte-identically re-corrupts the blob even if an
earlier replay's re-put healed it in between.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class ReplicaStall:
    """Freeze every worker of *replica_id* from *at_us* for
    *duration_us*: each worker's clock advances to at least
    ``max(free_at, at_us) + duration_us`` before taking new work."""

    at_us: float
    replica_id: int
    duration_us: float

    def __post_init__(self) -> None:
        if self.at_us < 0 or self.duration_us < 0:
            raise ValueError("stall times must be >= 0")


@dataclass(frozen=True)
class CorruptBlob:
    """Overwrite the *index*-th (mod population) modeled blob of *kind*
    with garbage at *at_us*. Fires as a no-op when the model holds no
    blob of that kind (counted in the fleet report — an injected fault
    that found nothing to corrupt should be visible, not silent)."""

    at_us: float
    kind: str = "exe"
    index: int = 0

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("corruption time must be >= 0")
        if self.kind not in ("exe", "prefix", "profile"):
            raise ValueError(f"unknown blob kind {self.kind!r}")
        if self.index < 0:
            raise ValueError("index must be >= 0")

    def garbage(self, key: str) -> bytes:
        """The deterministic payload written over the blob: keyed junk
        that fails every layer of store validation (wrong magic, wrong
        hash) but is stable across replays, so re-corruption after a
        healing re-put produces byte-identical disk state."""
        seed = hashlib.sha256(f"chaos:{self.kind}:{key}".encode()).digest()
        return b"NIMBLE-CHAOS" + seed * 4
