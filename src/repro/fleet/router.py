"""The fleet router: N replica servers, one timeline, one store.

A :class:`FleetRouter` fronts ``num_replicas`` independent
:class:`~repro.serve.InferenceServer` instances. Each replica has its
own workers, batcher, and specialization manager — the unit of failure
and of cache locality — but all of them share one virtual timeline, one
kernel cache, one artifact directory, and one
:class:`~repro.fleet.FleetStoreView` model of it. The router owns
everything between the trace and the replicas:

- **admission** (``repro.fleet.tenancy``): each arrival spends a token
  from its tenant's bucket; over-budget arrivals are rejected-and-counted
  at the door, never queued.
- **routing**: ``"affinity"`` sends a request to a replica that already
  has its exact shape ready (or compiling), so specialized executables
  concentrate instead of every replica re-deriving every shape;
  ``"least_loaded"`` and ``"random"`` are the comparison baselines.
- **chaos** (``repro.fleet.chaos``): declarative faults merged into the
  event loop at their timestamps.
- **store GC** (``repro.store.StoreGC``): periodic collections guarded
  by the union of every replica's referenced and in-flight store keys.

The event loop is the single-server loop generalized: at each step the
earliest of (next arrival, next chaos event, each replica's next bucket
deadline, next GC tick) fires, with ties broken in exactly that order
(and by replica id among deadlines). A one-replica fleet with no
admission limits therefore replays the *identical* event sequence as
``InferenceServer.simulate`` — the property the differential tests in
``tests/test_fleet.py`` pin down — and every decision the router makes
is a pure function of (trace, chaos, config), which is the fleet
determinism contract (docs/fleet.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codegen.kernels import KernelCache
from repro.fleet.chaos import CorruptBlob, ReplicaStall
from repro.fleet.report import FleetReport, TenantStats
from repro.fleet.tenancy import TenantSpec, TokenBucket
from repro.fleet.view import FleetStoreView
from repro.hardware.platforms import Platform
from repro.ir.module import IRModule
from repro.serve.request import Request
from repro.serve.server import InferenceServer, ServeConfig
from repro.store import ArtifactStore, StoreGC

ROUTING_POLICIES = ("affinity", "least_loaded", "random")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-level knobs (per-replica behavior lives in ServeConfig)."""

    num_replicas: int = 2
    routing: str = "affinity"
    # Seed for the "random" routing baseline (a per-simulation
    # RandomState, so replays draw the same placement sequence).
    random_seed: int = 0
    # Store GC: fire a collection every gc_interval_us of virtual time
    # (None = only the end-of-simulation collection), pruning blobs
    # older than gc_max_age_us and/or beyond the gc_max_blobs LRU
    # budget. GC runs only when the serve config has an artifact_dir
    # and at least one pruning policy is set.
    gc_interval_us: Optional[float] = None
    gc_max_age_us: Optional[float] = None
    gc_max_blobs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"routing must be one of {ROUTING_POLICIES}, "
                f"got {self.routing!r}"
            )
        if self.gc_interval_us is not None and self.gc_interval_us <= 0:
            raise ValueError("gc_interval_us must be > 0")


class FleetRouter:
    """Route a multi-tenant trace across a fleet of replica servers."""

    def __init__(
        self,
        mod: IRModule,
        platform: Optional[Platform] = None,
        config: Optional[ServeConfig] = None,
        fleet: Optional[FleetConfig] = None,
        tenants: Sequence[TenantSpec] = (),
        kernel_cache: Optional[KernelCache] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.fleet = fleet or FleetConfig()
        self.tenant_specs: Dict[str, TenantSpec] = {}
        for spec in tenants:
            if spec.name in self.tenant_specs:
                raise ValueError(f"duplicate tenant {spec.name!r}")
            self.tenant_specs[spec.name] = spec
        # One kernel cache fleet-wide: replica 0's dynamic build fills
        # it, siblings reuse the compiled kernels (deterministic — the
        # cache changes compile *work*, never modeled charges/outputs).
        self.kernel_cache = kernel_cache or KernelCache()
        # The shared store model. The probe ArtifactStore snapshots the
        # directory BEFORE any replica opens it, giving the view its
        # frozen initial inventory; the same instance later mirrors GC
        # prunes and chaos corruption to disk.
        self.store: Optional[ArtifactStore] = None
        self.view: Optional[FleetStoreView] = None
        self._gc: Optional[StoreGC] = None
        if self.config.artifact_dir is not None:
            self.store = ArtifactStore(self.config.artifact_dir)
            self.view = FleetStoreView(self.store)
            if (
                self.fleet.gc_max_age_us is not None
                or self.fleet.gc_max_blobs is not None
            ):
                self._gc = StoreGC(
                    self.store,
                    self.view,
                    max_age_us=self.fleet.gc_max_age_us,
                    max_blobs=self.fleet.gc_max_blobs,
                )
        self.replicas = [
            InferenceServer(
                mod,
                platform,
                self.config,
                kernel_cache=self.kernel_cache,
                replica_id=i,
                store_view=self.view,
            )
            for i in range(self.fleet.num_replicas)
        ]
        self._buckets = {
            name: TokenBucket(spec) for name, spec in self.tenant_specs.items()
        }

    # ------------------------------------------------------------- simulation
    def simulate(
        self,
        requests: Sequence[Request],
        chaos: Sequence[object] = (),
    ) -> FleetReport:
        """Serve the trace to completion across the fleet.

        Each call is an independent replay: replicas begin cold, token
        buckets refill, the store view's per-simulation state clears,
        and the random-routing stream reseeds. *chaos* events fire at
        their virtual timestamps (see ``repro.fleet.chaos``)."""
        if self.view is not None:
            self.view.reset()
        for replica in self.replicas:
            replica.begin()
        for bucket in self._buckets.values():
            bucket.reset()
        # Reseeded per simulation so the "random" baseline replays the
        # same placement draws.
        self._rs = np.random.RandomState(self.fleet.random_seed)
        report = FleetReport(
            routing=self.fleet.routing,
            routed=[0] * len(self.replicas),
        )
        tenants: Dict[str, TenantStats] = {}
        rejected_rids: List[int] = []

        def tenant_stats(name: str) -> TenantStats:
            stats = tenants.get(name)
            if stats is None:
                spec = self.tenant_specs.get(name)
                stats = TenantStats(
                    name=name,
                    deadline_us=spec.deadline_us if spec else math.inf,
                )
                tenants[name] = stats
            return stats

        trace = sorted(requests, key=lambda r: (r.arrival_us, r.rid))
        faults = sorted(chaos, key=lambda e: e.at_us)
        now = 0.0
        i, n = 0, len(trace)
        j, m = 0, len(faults)
        gc_next = (
            self.fleet.gc_interval_us
            if self._gc is not None and self.fleet.gc_interval_us is not None
            else math.inf
        )
        while i < n or j < m or any(r.pending for r in self.replicas):
            # The next event, as (time, tie-rank, replica-rank): arrivals
            # beat chaos beat deadlines beat GC at the same instant, and
            # deadline ties resolve by replica id. This is the
            # single-server `arrival <= deadline` rule, generalized.
            best: Optional[Tuple[float, int, int]] = None
            if i < n:
                best = (trace[i].arrival_us, 0, 0)
            if j < m:
                cand = (faults[j].at_us, 1, 0)
                if best is None or cand < best:
                    best = cand
            for k, replica in enumerate(self.replicas):
                deadline = replica.next_deadline()
                if deadline is not None:
                    cand = (deadline, 2, k)
                    if best is None or cand < best:
                        best = cand
            if gc_next < math.inf:
                cand = (gc_next, 3, 0)
                if best is None or cand < best:
                    best = cand
            if best is None or best[0] == math.inf:
                # Arrivals and chaos exhausted, no finite deadline will
                # ever fire: shutdown drain happens in finish().
                break
            now, rank, k = best
            if rank == 0:
                self._on_arrival(
                    trace[i], now, report, tenant_stats, rejected_rids
                )
                i += 1
            elif rank == 1:
                self._apply_chaos(faults[j], now, report)
                j += 1
            elif rank == 2:
                self.replicas[k].flush_due(now)
            else:
                self._run_gc(now, report)
                gc_next += self.fleet.gc_interval_us
        report.replica_reports = [r.finish(now) for r in self.replicas]
        report.fleet_restores = [
            r.specializer.fleet_restores if r.specializer is not None else 0
            for r in self.replicas
        ]
        if self._gc is not None:
            # End-of-simulation collection: the fleet's steady-state
            # inventory after every drain and profile snapshot.
            self._run_gc(now, report)
        for response in report.responses:
            tenant_stats(response.tenant).latencies_us.append(
                response.latency_us
            )
        report.tenants = tenants
        report.rejected_rids = tuple(rejected_rids)
        return report

    # ---------------------------------------------------------------- arrivals
    def _on_arrival(
        self, request: Request, now: float, report: FleetReport,
        tenant_stats, rejected_rids: List[int],
    ) -> None:
        stats = tenant_stats(request.tenant)
        bucket = self._buckets.get(request.tenant)
        if bucket is not None and not bucket.admit(now):
            # Over budget: shed at the door. The request never reaches a
            # batcher, so one tenant's burst cannot inflate another
            # tenant's queues.
            stats.rejected += 1
            rejected_rids.append(request.rid)
            return
        replica, via_affinity = self._route(request, now)
        stats.admitted += 1
        report.routed[replica.replica_id] += 1
        if via_affinity:
            report.affinity_hits += 1
        replica.ingest(request, now)

    def _route(
        self, request: Request, now: float
    ) -> Tuple[InferenceServer, bool]:
        """Pick the serving replica. Returns (replica, placed-by-affinity)."""
        if self.fleet.routing == "random":
            k = int(self._rs.randint(len(self.replicas)))
            return self.replicas[k], False

        def load(replica: InferenceServer):
            return (
                replica.backlog_us(now),
                replica.pending,
                replica.replica_id,
            )

        if self.fleet.routing == "affinity":
            exact = self.replicas[0].exact_key(request.payload)
            states = {
                r.replica_id: r.specialization_state(exact, now)
                for r in self.replicas
            }
            for wanted in ("ready", "compiling"):
                candidates = [
                    r for r in self.replicas if states[r.replica_id] == wanted
                ]
                if candidates:
                    return min(candidates, key=load), True
        return min(self.replicas, key=load), False

    # ------------------------------------------------------------------- chaos
    def _apply_chaos(self, event, now: float, report: FleetReport) -> None:
        if isinstance(event, ReplicaStall):
            replica = self.replicas[event.replica_id]
            for worker in replica.workers:
                # Freeze: the worker's clock (its availability frontier)
                # jumps past the stall window. In-flight batches finish
                # first — the stall extends from whichever is later.
                worker.ctx.clock.advance_to(
                    max(worker.free_at_us, event.at_us) + event.duration_us
                )
            report.chaos_stalls += 1
            return
        if isinstance(event, CorruptBlob):
            if self.store is None or self.view is None:
                report.chaos_noops += 1
                return
            entries = [
                e for e in self.view.inventory() if e[0] == event.kind
            ]
            if not entries:
                report.chaos_noops += 1
                return
            kind, key = entries[event.index % len(entries)]
            # Overwrite on disk only: the model still says the blob is
            # present, so readers go to disk, fail validation, and
            # reject-and-count — the failure mode under test.
            self.store._atomic_write(
                self.store.blob_path(kind, key), event.garbage(key)
            )
            report.chaos_corruptions += 1
            return
        raise TypeError(f"unknown chaos event {type(event).__name__}")

    # ---------------------------------------------------------------------- gc
    def _run_gc(self, now: float, report: FleetReport) -> None:
        referenced = set()
        in_flight = set()
        for replica in self.replicas:
            referenced |= replica.referenced_store_keys()
            in_flight |= replica.restoring_store_keys(now)
        report.gc_reports.append(
            self._gc.collect(now, referenced=referenced, in_flight=in_flight)
        )
