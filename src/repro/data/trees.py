"""Binary parse trees (the Tree-LSTM input structure)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass
class Tree:
    """A binary tree; leaves carry token ids."""

    token_id: int = -1
    left: Optional["Tree"] = None
    right: Optional["Tree"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    @staticmethod
    def leaf(token_id: int) -> "Tree":
        return Tree(token_id=token_id)

    @staticmethod
    def node(left: "Tree", right: "Tree") -> "Tree":
        return Tree(token_id=-1, left=left, right=right)

    def num_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.num_leaves() + self.right.num_leaves()

    def num_nodes(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.num_nodes() + self.right.num_nodes()

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(self.left.depth(), self.right.depth())

    def leaves(self) -> Iterator["Tree"]:
        if self.is_leaf:
            yield self
        else:
            yield from self.left.leaves()
            yield from self.right.leaves()

    def nodes_by_depth(self) -> List[List["Tree"]]:
        """Internal+leaf nodes grouped by height above the leaves — the
        grouping TensorFlow Fold's dynamic batching operates on."""
        levels: List[List[Tree]] = []

        def height(t: Tree) -> int:
            if t.is_leaf:
                h = 0
            else:
                h = 1 + max(height(t.left), height(t.right))
            while len(levels) <= h:
                levels.append([])
            levels[h].append(t)
            return h

        height(self)
        return levels
