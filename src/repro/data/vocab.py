"""Embedding tables for the synthetic corpora."""

from __future__ import annotations

import numpy as np


def embedding_table(vocab_size: int = 8192, dim: int = 300, seed: int = 0) -> np.ndarray:
    """Seeded random word embeddings (GloVe stand-in; values are irrelevant
    to latency, only the dimensionality matters)."""
    rng = np.random.RandomState(seed)
    return (rng.randn(vocab_size, dim) * 0.1).astype(np.float32)
