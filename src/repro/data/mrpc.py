"""Synthetic MRPC-like corpus.

The Microsoft Research Paraphrase Corpus supplies the variable-length
inputs for the LSTM and BERT rows of Tables 1 and 3. Its sentence-length
distribution is roughly normal with mean ≈ 21 tokens and a 7–40 range
(after tokenization); we sample lengths from that distribution with a
fixed seed and synthesize token ids.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

MEAN_LENGTH = 21.0
STD_LENGTH = 6.5
MIN_LENGTH = 7
MAX_LENGTH = 40


def mrpc_like_lengths(n: int, seed: int = 0) -> List[int]:
    """Sentence lengths matching the MRPC distribution."""
    rng = np.random.RandomState(seed)
    raw = rng.normal(MEAN_LENGTH, STD_LENGTH, size=n)
    return [int(x) for x in np.clip(np.round(raw), MIN_LENGTH, MAX_LENGTH)]


def mrpc_like_sentences(
    n: int, vocab_size: int = 8192, seed: int = 0
) -> List[np.ndarray]:
    """Token-id sequences (int64) with MRPC-like lengths."""
    rng = np.random.RandomState(seed + 1)
    return [
        rng.randint(0, vocab_size, size=length).astype(np.int64)
        for length in mrpc_like_lengths(n, seed)
    ]
