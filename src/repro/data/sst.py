"""Synthetic SST-like treebank.

The Stanford Sentiment Treebank provides the per-input tree structures of
the Tree-LSTM experiment (Table 2): binarized constituency parses with a
mean of ≈ 19 leaves. We sample leaf counts from that distribution and
build random (but seeded) binary bracketings — right-leaning with random
splits, matching the shape statistics of binarized parses.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.trees import Tree

MEAN_LEAVES = 19.0
STD_LEAVES = 9.0
MIN_LEAVES = 3
MAX_LEAVES = 50


def _random_tree(token_ids: List[int], rng: np.random.RandomState) -> Tree:
    if len(token_ids) == 1:
        return Tree.leaf(token_ids[0])
    split = int(rng.randint(1, len(token_ids)))
    return Tree.node(
        _random_tree(token_ids[:split], rng),
        _random_tree(token_ids[split:], rng),
    )


def sst_like_trees(n: int, vocab_size: int = 8192, seed: int = 0) -> List[Tree]:
    rng = np.random.RandomState(seed)
    trees = []
    for _ in range(n):
        leaves = int(
            np.clip(round(rng.normal(MEAN_LEAVES, STD_LEAVES)), MIN_LEAVES, MAX_LEAVES)
        )
        tokens = rng.randint(0, vocab_size, size=leaves).tolist()
        trees.append(_random_tree(tokens, rng))
    return trees
