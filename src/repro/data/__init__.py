"""Synthetic datasets standing in for MRPC and SST (§6.1).

Only the *length and topology distributions* of the inputs affect
inference latency, so seeded synthetic corpora with matching
distributions preserve the experiments' behavior (see DESIGN.md).
"""

from repro.data.trees import Tree
from repro.data.mrpc import mrpc_like_lengths, mrpc_like_sentences
from repro.data.sst import sst_like_trees
from repro.data.vocab import embedding_table

__all__ = [
    "Tree",
    "mrpc_like_lengths",
    "mrpc_like_sentences",
    "sst_like_trees",
    "embedding_table",
]
