"""Exception hierarchy for the Nimble reproduction.

Every subsystem raises a subclass of :class:`NimbleError` so callers can
catch compiler vs. runtime failures separately, mirroring how TVM splits
``TVMError`` diagnostics from runtime check failures.
"""

from __future__ import annotations


class NimbleError(Exception):
    """Base class for all errors raised by this package."""


class TypeInferenceError(NimbleError):
    """A type relation failed or unification found incompatible types."""


class ShapeError(NimbleError):
    """A shape function or runtime shape check failed (gradual typing)."""


class CompilerError(NimbleError):
    """A compiler pass was applied to IR it cannot handle."""


class VMError(NimbleError):
    """The virtual machine hit an invalid instruction or operand."""


class SerializationError(NimbleError):
    """An executable could not be serialized or deserialized."""


class DeviceError(NimbleError):
    """Device placement was inconsistent or a cross-device op was illegal."""


class TuningError(NimbleError):
    """The auto-tuner was configured with an empty or invalid search space."""
