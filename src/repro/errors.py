"""Exception hierarchy for the Nimble reproduction.

Every subsystem raises a subclass of :class:`NimbleError` so callers can
catch compiler vs. runtime failures separately, mirroring how TVM splits
``TVMError`` diagnostics from runtime check failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


class NimbleError(Exception):
    """Base class for all errors raised by this package."""


class TypeInferenceError(NimbleError):
    """A type relation failed or unification found incompatible types."""


class ShapeError(NimbleError):
    """A shape function or runtime shape check failed (gradual typing)."""


class CompilerError(NimbleError):
    """A compiler pass was applied to IR it cannot handle."""


class VMError(NimbleError):
    """The virtual machine hit an invalid instruction or operand."""


class ShapeGuardError(VMError):
    """A specialized executable's entry shape guard rejected the inputs.

    Member-wise specialized executables (exact or partial) carry the
    shapes they were compiled for in ``specialized_shapes``; running one
    on inputs whose bound dims disagree would silently compute with the
    wrong static extents. The guard turns that into a loud error. The
    serving layer never sees this raised — it checks the same guard
    first and transparently deopts mismatched batch members to the
    dynamic tier."""


class SerializationError(NimbleError):
    """An executable could not be serialized or deserialized."""


class DeviceError(NimbleError):
    """Device placement was inconsistent or a cross-device op was illegal."""


class TuningError(NimbleError):
    """The auto-tuner was configured with an empty or invalid search space."""


@dataclass(frozen=True)
class Finding:
    """One defect reported by a static checker (``repro.analysis``).

    ``checker`` names the checker that produced it (``bytecode``,
    ``races``, ``lifetimes``, ``lint``); ``function`` the VM or IR
    function; ``pc`` the instruction index (-1 for IR-level findings,
    which have no bytecode position). ``severity`` is ``"error"`` for
    soundness violations and ``"warning"`` for hygiene findings
    (unused bindings, shadowing) that never fail verification.
    """

    checker: str
    function: str
    pc: int
    message: str
    severity: str = "error"

    def __str__(self) -> str:
        where = f"{self.function}@{self.pc}" if self.pc >= 0 else self.function
        return f"[{self.checker}] {where}: {self.message}"


class VerificationError(NimbleError):
    """Static verification of an executable or module failed.

    Normalizes every checker's failures into one exception type (the
    way decoder failures all normalize to :class:`SerializationError`),
    carrying the structured ``findings`` list so store/serve callers can
    count, log, or render them without parsing the message."""

    def __init__(
        self, findings: Sequence[Finding], context: Optional[str] = None
    ) -> None:
        self.findings = list(findings)
        self.context = context
        head = f"verification failed ({len(self.findings)} finding(s))"
        if context:
            head += f" {context}"
        lines = [head] + [f"  {f}" for f in self.findings[:8]]
        if len(self.findings) > 8:
            lines.append(f"  ... and {len(self.findings) - 8} more")
        super().__init__("\n".join(lines))
