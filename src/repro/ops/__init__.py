"""Operator library.

Importing this package registers all built-in operators (the submodules
register at import time, like Relay's TOPI registration).
"""

from repro.ops.registry import (
    OpDef,
    OpPattern,
    ShapeFuncMode,
    all_op_names,
    get_op_def,
    has_op,
    register_op,
)

# Registration side effects — order matters only for readability.
from repro.ops import tensor_ops  # noqa: F401
from repro.ops import nn  # noqa: F401
from repro.ops import transform  # noqa: F401
from repro.ops import reduce  # noqa: F401
from repro.ops import dynamic  # noqa: F401
from repro.ops import dialect  # noqa: F401

from repro.ops.dialect import DIALECT_OPS
from repro.ops.transform import _split_num_outputs as split_num_outputs
from repro.ops import api

__all__ = [
    "OpDef",
    "OpPattern",
    "ShapeFuncMode",
    "all_op_names",
    "get_op_def",
    "has_op",
    "register_op",
    "DIALECT_OPS",
    "split_num_outputs",
    "api",
]


def num_outputs_of(name: str, attrs: dict) -> int:
    """Number of outputs an op call produces (split is attrs-dependent)."""
    op_def = get_op_def(name)
    if op_def.num_outputs == -1:
        return split_num_outputs(attrs)
    return op_def.num_outputs
