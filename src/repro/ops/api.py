"""Call-building helpers: the user-facing way to construct operator calls.

``api.dense(x, w)`` builds ``Call(Op("nn.dense"), [x, w])`` etc. Model
builders (:mod:`repro.models`) are written entirely against this module.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.ir.expr import Call, Constant, Expr, Tuple, TupleGetItem, const
from repro.ir.op import Op


def _call(name: str, args: Sequence[Expr], attrs: Optional[dict] = None) -> Call:
    return Call(Op.get(name), list(args), attrs or {})


# -- arithmetic ----------------------------------------------------------------
def add(lhs: Expr, rhs: Expr) -> Call:
    return _call("add", [lhs, rhs])


def subtract(lhs: Expr, rhs: Expr) -> Call:
    return _call("subtract", [lhs, rhs])


def multiply(lhs: Expr, rhs: Expr) -> Call:
    return _call("multiply", [lhs, rhs])


def divide(lhs: Expr, rhs: Expr) -> Call:
    return _call("divide", [lhs, rhs])


def maximum(lhs: Expr, rhs: Expr) -> Call:
    return _call("maximum", [lhs, rhs])


def minimum(lhs: Expr, rhs: Expr) -> Call:
    return _call("minimum", [lhs, rhs])


def power(lhs: Expr, rhs: Expr) -> Call:
    return _call("power", [lhs, rhs])


def negative(x: Expr) -> Call:
    return _call("negative", [x])


def exp(x: Expr) -> Call:
    return _call("exp", [x])


def log(x: Expr) -> Call:
    return _call("log", [x])


def sqrt(x: Expr) -> Call:
    return _call("sqrt", [x])


def rsqrt(x: Expr) -> Call:
    return _call("rsqrt", [x])


def tanh(x: Expr) -> Call:
    return _call("tanh", [x])


def sigmoid(x: Expr) -> Call:
    return _call("sigmoid", [x])


def erf(x: Expr) -> Call:
    return _call("erf", [x])


def abs_(x: Expr) -> Call:
    return _call("abs", [x])


def cast(x: Expr, dtype: str) -> Call:
    return _call("cast", [x], {"dtype": dtype})


def clip(x: Expr, a_min: float, a_max: float) -> Call:
    return _call("clip", [x], {"a_min": a_min, "a_max": a_max})


# -- comparisons -----------------------------------------------------------------
def equal(lhs: Expr, rhs: Expr) -> Call:
    return _call("equal", [lhs, rhs])


def not_equal(lhs: Expr, rhs: Expr) -> Call:
    return _call("not_equal", [lhs, rhs])


def less(lhs: Expr, rhs: Expr) -> Call:
    return _call("less", [lhs, rhs])


def less_equal(lhs: Expr, rhs: Expr) -> Call:
    return _call("less_equal", [lhs, rhs])


def greater(lhs: Expr, rhs: Expr) -> Call:
    return _call("greater", [lhs, rhs])


def greater_equal(lhs: Expr, rhs: Expr) -> Call:
    return _call("greater_equal", [lhs, rhs])


def logical_and(lhs: Expr, rhs: Expr) -> Call:
    return _call("logical_and", [lhs, rhs])


def logical_or(lhs: Expr, rhs: Expr) -> Call:
    return _call("logical_or", [lhs, rhs])


def logical_not(x: Expr) -> Call:
    return _call("logical_not", [x])


def where(cond: Expr, lhs: Expr, rhs: Expr) -> Call:
    return _call("where", [cond, lhs, rhs])


# -- nn -----------------------------------------------------------------------------
def dense(data: Expr, weight: Expr) -> Call:
    return _call("nn.dense", [data, weight])


def bias_add(data: Expr, bias: Expr, axis: int = -1) -> Call:
    return _call("nn.bias_add", [data, bias], {"axis": axis})


def batch_matmul(lhs: Expr, rhs: Expr) -> Call:
    return _call("nn.batch_matmul", [lhs, rhs])


def relu(x: Expr) -> Call:
    return _call("nn.relu", [x])


def gelu(x: Expr) -> Call:
    return _call("nn.gelu", [x])


def softmax(x: Expr, axis: int = -1) -> Call:
    return _call("nn.softmax", [x], {"axis": axis})


def log_softmax(x: Expr, axis: int = -1) -> Call:
    return _call("nn.log_softmax", [x], {"axis": axis})


def layer_norm(data: Expr, gamma: Expr, beta: Expr, axis: int = -1, epsilon: float = 1e-5) -> Call:
    return _call("nn.layer_norm", [data, gamma, beta], {"axis": axis, "epsilon": epsilon})


def conv2d(data: Expr, weight: Expr, strides: int = 1, padding: int = 0, groups: int = 1) -> Call:
    return _call(
        "nn.conv2d", [data, weight], {"strides": strides, "padding": padding, "groups": groups}
    )


def max_pool2d(data: Expr, pool_size: int = 2, strides: Optional[int] = None, padding: int = 0) -> Call:
    return _call(
        "nn.max_pool2d",
        [data],
        {"pool_size": pool_size, "strides": strides or pool_size, "padding": padding},
    )


def avg_pool2d(data: Expr, pool_size: int = 2, strides: Optional[int] = None, padding: int = 0) -> Call:
    return _call(
        "nn.avg_pool2d",
        [data],
        {"pool_size": pool_size, "strides": strides or pool_size, "padding": padding},
    )


def global_avg_pool2d(data: Expr) -> Call:
    return _call("nn.global_avg_pool2d", [data])


def batch_norm_inference(
    data: Expr, gamma: Expr, beta: Expr, mean: Expr, var: Expr, epsilon: float = 1e-5
) -> Call:
    return _call(
        "nn.batch_norm_inference", [data, gamma, beta, mean, var], {"epsilon": epsilon}
    )


# -- transforms ------------------------------------------------------------------------
def reshape(data: Expr, newshape: Sequence[int]) -> Call:
    return _call("reshape", [data], {"newshape": tuple(newshape)})


def transpose(data: Expr, axes: Optional[Sequence[int]] = None) -> Call:
    return _call("transpose", [data], {"axes": tuple(axes) if axes else None})


def concatenate(tensors: Sequence[Expr], axis: int = 0) -> Call:
    return _call("concatenate", list(tensors), {"axis": axis})


def split(data: Expr, indices_or_sections: Union[int, Sequence[int]], axis: int = 0) -> Call:
    ios = (
        indices_or_sections
        if isinstance(indices_or_sections, int)
        else tuple(indices_or_sections)
    )
    return _call("split", [data], {"indices_or_sections": ios, "axis": axis})


def take(data: Expr, indices: Expr, axis: Optional[int] = None) -> Call:
    return _call("take", [data, indices], {"axis": axis})


def stack(tensors: Sequence[Expr], axis: int = 0) -> Call:
    return _call("stack", list(tensors), {"axis": axis})


def expand_dims(data: Expr, axis: int = 0) -> Call:
    return _call("expand_dims", [data], {"axis": axis})


def squeeze(data: Expr, axis=None) -> Call:
    return _call("squeeze", [data], {"axis": axis})


def strided_slice(
    data: Expr, begin: Sequence[int], end: Sequence[int], strides: Optional[Sequence[int]] = None
) -> Call:
    return _call(
        "strided_slice",
        [data],
        {"begin": tuple(begin), "end": tuple(end), "strides": tuple(strides) if strides else None},
    )


def zeros(shape: Sequence[int], dtype: str = "float32") -> Call:
    return _call("zeros", [], {"shape": tuple(shape), "dtype": dtype})


def ones(shape: Sequence[int], dtype: str = "float32") -> Call:
    return _call("ones", [], {"shape": tuple(shape), "dtype": dtype})


def full(fill_value: float, shape: Sequence[int], dtype: str = "float32") -> Call:
    return _call("full", [], {"shape": tuple(shape), "dtype": dtype, "fill_value": fill_value})


def broadcast_to(data: Expr, shape: Sequence[int]) -> Call:
    return _call("broadcast_to", [data], {"shape": tuple(shape)})


# -- reductions ---------------------------------------------------------------------------
def sum_(data: Expr, axis=None, keepdims: bool = False) -> Call:
    return _call("sum", [data], {"axis": axis, "keepdims": keepdims})


def mean(data: Expr, axis=None, keepdims: bool = False) -> Call:
    return _call("mean", [data], {"axis": axis, "keepdims": keepdims})


def max_(data: Expr, axis=None, keepdims: bool = False) -> Call:
    return _call("max", [data], {"axis": axis, "keepdims": keepdims})


def min_(data: Expr, axis=None, keepdims: bool = False) -> Call:
    return _call("min", [data], {"axis": axis, "keepdims": keepdims})


def argmax(data: Expr, axis: int = -1, keepdims: bool = False) -> Call:
    return _call("argmax", [data], {"axis": axis, "keepdims": keepdims})


def argmin(data: Expr, axis: int = -1, keepdims: bool = False) -> Call:
    return _call("argmin", [data], {"axis": axis, "keepdims": keepdims})


# -- dynamic ops -----------------------------------------------------------------------------
def arange(start: Expr, stop: Expr, step: Expr, dtype: str = "float32") -> Call:
    return _call("arange", [start, stop, step], {"dtype": dtype})


def unique(data: Expr) -> Call:
    return _call("unique", [data])


def nonzero(data: Expr) -> Call:
    return _call("nonzero", [data])


def non_max_suppression(boxes: Expr, scores: Expr, iou_threshold: float = 0.5) -> Call:
    return _call(
        "vision.non_max_suppression", [boxes, scores], {"iou_threshold": iou_threshold}
    )


def topk(data: Expr, k: int) -> Call:
    return _call("topk", [data], {"k": k})


# -- dialect (used by passes, exposed for tests) -----------------------------------------------
def shape_of(data: Expr) -> Call:
    return _call("vm.shape_of", [data])


def device_copy(data: Expr, src_device, dst_device) -> Call:
    return _call("device.device_copy", [data], {"src_device": src_device, "dst_device": dst_device})
