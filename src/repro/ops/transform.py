"""Tensor layout/shape transform operators (INJECTIVE fusion pattern).

Type relations here do most of the ``Any``-propagation work: e.g.
``concatenate`` along a dynamic axis emits an ``Any`` output dim, and
``reshape`` with ``-1`` over a dynamic input stays dynamic. Shape functions
recompute everything exactly at runtime.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ShapeError, TypeInferenceError
from repro.ir.types import Any, TensorType, TupleType, Type
from repro.ops.registry import OpDef, OpPattern, ShapeFuncMode, register_op
from repro.ops.shape_funcs import normalize_axis, prod
from repro.ops.type_relations import expect_tensor, unify_dim


# -- reshape ------------------------------------------------------------------
def _reshape_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "reshape data")
    newshape = list(attrs["newshape"])
    if newshape.count(-1) > 1:
        raise TypeInferenceError("reshape allows at most one -1")
    out: List = []
    for dim in newshape:
        if dim == -1:
            # The inferred dim is static only when all of the input and the
            # other output dims are static.
            known_in = data.num_elements()
            others = [d for d in newshape if d != -1]
            if known_in is not None:
                rest = prod(others) if others else 1
                if rest == 0 or known_in % rest != 0:
                    raise TypeInferenceError(
                        f"reshape: cannot infer -1 for {data!r} -> {newshape}"
                    )
                out.append(known_in // rest)
            else:
                out.append(Any())
        elif dim >= 0:
            out.append(dim)
        else:
            raise TypeInferenceError(f"reshape: invalid dim {dim}")
    return TensorType(tuple(out), data.dtype)


def _reshape_compute(inputs, attrs):
    return np.reshape(inputs[0], tuple(attrs["newshape"]))


def _reshape_shape_func(in_shapes, in_values, attrs):
    total = prod(in_shapes[0])
    newshape = list(attrs["newshape"])
    known = prod([d for d in newshape if d != -1]) if newshape else 1
    out = []
    for dim in newshape:
        if dim == -1:
            if known == 0 or total % known != 0:
                raise ShapeError(f"reshape runtime check failed: {in_shapes[0]} -> {newshape}")
            out.append(total // known)
        else:
            out.append(dim)
    if prod(out) != total:
        raise ShapeError(f"reshape element count mismatch: {in_shapes[0]} -> {out}")
    return [tuple(out)]


register_op(
    OpDef(
        name="reshape",
        type_rel=_reshape_rel,
        compute=_reshape_compute,
        shape_func=_reshape_shape_func,
        pattern=OpPattern.INJECTIVE,
        flops=lambda i, o, a: 0.0,
    )
)


# -- transpose ----------------------------------------------------------------
def _transpose_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "transpose data")
    axes = attrs.get("axes")
    if axes is None:
        axes = tuple(reversed(range(data.ndim)))
    if sorted(axes) != list(range(data.ndim)):
        raise TypeInferenceError(f"transpose: bad axes {axes} for {data!r}")
    return TensorType(tuple(data.shape[a] for a in axes), data.dtype)


def _transpose_compute(inputs, attrs):
    axes = attrs.get("axes")
    return np.ascontiguousarray(np.transpose(inputs[0], axes))


def _transpose_shape_func(in_shapes, in_values, attrs):
    shape = in_shapes[0]
    axes = attrs.get("axes") or tuple(reversed(range(len(shape))))
    return [tuple(shape[a] for a in axes)]


register_op(
    OpDef(
        name="transpose",
        type_rel=_transpose_rel,
        compute=_transpose_compute,
        shape_func=_transpose_shape_func,
        pattern=OpPattern.INJECTIVE,
    )
)


# -- concatenate (variadic) -----------------------------------------------------
def _concatenate_rel(arg_types, attrs) -> Type:
    tensors = [expect_tensor(t, "concatenate input") for t in arg_types]
    if not tensors:
        raise TypeInferenceError("concatenate of zero tensors")
    ndim = tensors[0].ndim
    dtype = tensors[0].dtype
    axis = normalize_axis(attrs.get("axis", 0), ndim)
    out: List = []
    for i in range(ndim):
        if i == axis:
            total = 0
            dynamic = False
            for t in tensors:
                if isinstance(t.shape[i], Any):
                    dynamic = True
                else:
                    total += t.shape[i]
            out.append(Any() if dynamic else total)
        else:
            dim = tensors[0].shape[i]
            for t in tensors[1:]:
                dim = unify_dim(dim, t.shape[i], "concatenate non-axis dim")
            out.append(dim)
    return TensorType(tuple(out), dtype)


def _concatenate_compute(inputs, attrs):
    return np.concatenate(list(inputs), axis=attrs.get("axis", 0))


def _concatenate_shape_func(in_shapes, in_values, attrs):
    axis = normalize_axis(attrs.get("axis", 0), len(in_shapes[0]))
    out = list(in_shapes[0])
    for shape in in_shapes[1:]:
        for i, (a, b) in enumerate(zip(out, shape)):
            if i == axis:
                out[i] = a + b
            elif a != b:
                raise ShapeError(f"concatenate runtime check failed: {in_shapes}")
    return [tuple(out)]


register_op(
    OpDef(
        name="concatenate",
        type_rel=_concatenate_rel,
        compute=_concatenate_compute,
        shape_func=_concatenate_shape_func,
        pattern=OpPattern.INJECTIVE,
    )
)


# -- split ----------------------------------------------------------------------
def _split_sections(dim, attrs):
    sections = attrs["indices_or_sections"]
    if isinstance(sections, int):
        if isinstance(dim, Any):
            return [Any() for _ in range(sections)]
        if dim % sections != 0:
            raise TypeInferenceError(f"split: {dim} not divisible by {sections}")
        return [dim // sections] * sections
    # explicit indices
    pieces = []
    prev = 0
    for idx in list(sections):
        pieces.append(Any() if isinstance(dim, Any) else idx - prev)
        prev = idx
    pieces.append(Any() if isinstance(dim, Any) else dim - prev)
    return pieces


def _split_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "split data")
    axis = normalize_axis(attrs.get("axis", 0), data.ndim)
    pieces = _split_sections(data.shape[axis], attrs)
    fields = []
    for piece in pieces:
        shape = list(data.shape)
        shape[axis] = piece
        fields.append(TensorType(tuple(shape), data.dtype))
    return TupleType(fields)


def _split_compute(inputs, attrs):
    x = inputs[0]
    axis = attrs.get("axis", 0)
    sections = attrs["indices_or_sections"]
    parts = np.split(x, sections, axis=axis)
    return tuple(np.ascontiguousarray(p) for p in parts)


def _split_shape_func(in_shapes, in_values, attrs):
    shape = in_shapes[0]
    axis = normalize_axis(attrs.get("axis", 0), len(shape))
    sections = attrs["indices_or_sections"]
    if isinstance(sections, int):
        if shape[axis] % sections != 0:
            raise ShapeError(f"split runtime check failed: {shape[axis]} % {sections}")
        sizes = [shape[axis] // sections] * sections
    else:
        sizes, prev = [], 0
        for idx in list(sections):
            sizes.append(idx - prev)
            prev = idx
        sizes.append(shape[axis] - prev)
    out = []
    for size in sizes:
        s = list(shape)
        s[axis] = size
        out.append(tuple(s))
    return out


def _split_num_outputs(attrs) -> int:
    sections = attrs["indices_or_sections"]
    return sections if isinstance(sections, int) else len(list(sections)) + 1


register_op(
    OpDef(
        name="split",
        type_rel=_split_rel,
        compute=_split_compute,
        shape_func=_split_shape_func,
        pattern=OpPattern.INJECTIVE,
        num_outputs=-1,  # depends on attrs; see _split_num_outputs
    )
)


# -- take (gather / embedding lookup) ------------------------------------------
def _take_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "take data")
    indices = expect_tensor(arg_types[1], "take indices")
    axis = attrs.get("axis")
    if axis is None:
        return TensorType(indices.shape, data.dtype)
    axis = normalize_axis(axis, data.ndim)
    shape = data.shape[:axis] + indices.shape + data.shape[axis + 1 :]
    return TensorType(shape, data.dtype)


def _take_compute(inputs, attrs):
    data, indices = inputs
    axis = attrs.get("axis")
    if axis is None:
        return np.take(data.reshape(-1), indices.astype(np.int64))
    return np.take(data, indices.astype(np.int64), axis=axis)


def _take_shape_func(in_shapes, in_values, attrs):
    data, indices = in_shapes
    axis = attrs.get("axis")
    if axis is None:
        return [tuple(indices)]
    axis = normalize_axis(axis, len(data))
    return [tuple(data[:axis]) + tuple(indices) + tuple(data[axis + 1 :])]


register_op(
    OpDef(
        name="take",
        type_rel=_take_rel,
        compute=_take_compute,
        shape_func=_take_shape_func,
        pattern=OpPattern.INJECTIVE,
    )
)


# -- stack / expand_dims / squeeze -----------------------------------------------
def _stack_rel(arg_types, attrs) -> Type:
    tensors = [expect_tensor(t, "stack input") for t in arg_types]
    base = tensors[0]
    for t in tensors[1:]:
        for a, b in zip(base.shape, t.shape):
            unify_dim(a, b, "stack dims")
    axis = attrs.get("axis", 0)
    shape = list(base.shape)
    shape.insert(axis if axis >= 0 else axis + base.ndim + 1, len(tensors))
    return TensorType(tuple(shape), base.dtype)


register_op(
    OpDef(
        name="stack",
        type_rel=_stack_rel,
        compute=lambda inputs, attrs: np.stack(list(inputs), axis=attrs.get("axis", 0)),
        shape_func=lambda s, v, a: [
            tuple(
                list(s[0][: a.get("axis", 0)]) + [len(s)] + list(s[0][a.get("axis", 0) :])
            )
        ],
        pattern=OpPattern.INJECTIVE,
    )
)


def _expand_dims_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "expand_dims data")
    axis = attrs.get("axis", 0)
    shape = list(data.shape)
    shape.insert(axis if axis >= 0 else axis + data.ndim + 1, 1)
    return TensorType(tuple(shape), data.dtype)


register_op(
    OpDef(
        name="expand_dims",
        type_rel=_expand_dims_rel,
        compute=lambda inputs, attrs: np.expand_dims(inputs[0], attrs.get("axis", 0)),
        shape_func=lambda s, v, a: [
            tuple(
                list(s[0][: a.get("axis", 0)]) + [1] + list(s[0][a.get("axis", 0) :])
            )
        ],
        pattern=OpPattern.INJECTIVE,
        flops=lambda i, o, a: 0.0,
    )
)


def _squeeze_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "squeeze data")
    axes = attrs.get("axis")
    if axes is None:
        shape = tuple(d for d in data.shape if not (isinstance(d, int) and d == 1))
    else:
        axes = [normalize_axis(a, data.ndim) for a in (axes if isinstance(axes, (list, tuple)) else [axes])]
        for a in axes:
            if isinstance(data.shape[a], int) and data.shape[a] != 1:
                raise TypeInferenceError(f"squeeze axis {a} has extent {data.shape[a]}")
        shape = tuple(d for i, d in enumerate(data.shape) if i not in axes)
    return TensorType(shape, data.dtype)


def _squeeze_compute(inputs, attrs):
    axes = attrs.get("axis")
    if axes is not None and not isinstance(axes, (list, tuple)):
        axes = [axes]
    return np.squeeze(inputs[0], axis=tuple(axes) if axes is not None else None)


def _squeeze_shape_func(in_shapes, in_values, attrs):
    shape = in_shapes[0]
    axes = attrs.get("axis")
    if axes is None:
        return [tuple(d for d in shape if d != 1)]
    if not isinstance(axes, (list, tuple)):
        axes = [axes]
    axes = {normalize_axis(a, len(shape)) for a in axes}
    return [tuple(d for i, d in enumerate(shape) if i not in axes)]


register_op(
    OpDef(
        name="squeeze",
        type_rel=_squeeze_rel,
        compute=_squeeze_compute,
        shape_func=_squeeze_shape_func,
        pattern=OpPattern.INJECTIVE,
        flops=lambda i, o, a: 0.0,
    )
)


# -- strided_slice -----------------------------------------------------------------
def _strided_slice_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "strided_slice data")
    begin = list(attrs["begin"])
    end = list(attrs["end"])
    strides = list(attrs.get("strides") or [1] * len(begin))
    shape: List = []
    for i, dim in enumerate(data.shape):
        if i >= len(begin):
            shape.append(dim)
            continue
        if isinstance(dim, Any):
            shape.append(Any())
            continue
        b = min(begin[i], dim) if begin[i] >= 0 else begin[i] + dim
        e = min(end[i], dim) if end[i] >= 0 else end[i] + dim
        s = strides[i]
        shape.append(max(0, (e - b + s - 1) // s))
    return TensorType(tuple(shape), data.dtype)


def _strided_slice_compute(inputs, attrs):
    x = inputs[0]
    begin = list(attrs["begin"])
    end = list(attrs["end"])
    strides = list(attrs.get("strides") or [1] * len(begin))
    index = tuple(
        slice(b, e, s) for b, e, s in zip(begin, end, strides)
    ) + (Ellipsis,)
    return np.ascontiguousarray(x[index])


def _strided_slice_shape_func(in_shapes, in_values, attrs):
    shape = in_shapes[0]
    begin = list(attrs["begin"])
    end = list(attrs["end"])
    strides = list(attrs.get("strides") or [1] * len(begin))
    out = []
    for i, dim in enumerate(shape):
        if i >= len(begin):
            out.append(dim)
            continue
        b = begin[i] if begin[i] >= 0 else begin[i] + dim
        e = end[i] if end[i] >= 0 else end[i] + dim
        b, e = max(0, min(b, dim)), max(0, min(e, dim))
        out.append(max(0, (e - b + strides[i] - 1) // strides[i]))
    return [tuple(out)]


register_op(
    OpDef(
        name="strided_slice",
        type_rel=_strided_slice_rel,
        compute=_strided_slice_compute,
        shape_func=_strided_slice_shape_func,
        pattern=OpPattern.INJECTIVE,
    )
)


# -- constant creators ------------------------------------------------------------
def _filled_rel(arg_types, attrs) -> Type:
    return TensorType(tuple(attrs["shape"]), attrs.get("dtype", "float32"))


def _register_filled(name: str, fill_value) -> None:
    def compute(inputs, attrs):
        from repro.tensor.dtype import to_numpy_dtype

        value = attrs.get("fill_value", fill_value)
        return np.full(
            tuple(attrs["shape"]), value, dtype=to_numpy_dtype(attrs.get("dtype", "float32"))
        )

    register_op(
        OpDef(
            name=name,
            type_rel=_filled_rel,
            compute=compute,
            shape_func=lambda s, v, a: [tuple(a["shape"])],
            pattern=OpPattern.ELEMWISE,
        )
    )


_register_filled("zeros", 0.0)
_register_filled("ones", 1.0)
_register_filled("full", 0.0)


# -- broadcast_to --------------------------------------------------------------------
def _broadcast_to_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "broadcast_to data")
    return TensorType(tuple(attrs["shape"]), data.dtype)


register_op(
    OpDef(
        name="broadcast_to",
        type_rel=_broadcast_to_rel,
        compute=lambda inputs, attrs: np.broadcast_to(
            inputs[0], tuple(attrs["shape"])
        ).copy(),
        shape_func=lambda s, v, a: [tuple(a["shape"])],
        pattern=OpPattern.BROADCAST,
    )
)
