"""Shared type-relation helpers (§4.1).

Type relations compute output types from input types, propagating ``Any``
per the paper's rules. Because ``Any`` makes some static checks
undecidable, relations *relax* constraints involving ``Any`` and leave the
residual check to runtime shape functions (gradual typing).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import TypeInferenceError
from repro.ir.types import Any, Dim, TensorType, TupleType, Type, same_dim


def expect_tensor(ty: Type, what: str) -> TensorType:
    if not isinstance(ty, TensorType):
        raise TypeInferenceError(f"{what}: expected a tensor type, got {ty!r}")
    return ty


def expect_rank(ty: TensorType, rank: int, what: str) -> TensorType:
    if ty.ndim != rank:
        raise TypeInferenceError(f"{what}: expected rank {rank}, got {ty!r}")
    return ty


def broadcast_dim(a: Dim, b: Dim) -> Dim:
    """The paper's broadcast rules over one dimension pair:

    ``(Any, 1) -> Any``;  ``(Any, d) -> d`` for d > 1;  ``(Any, Any) -> Any``
    (token-preserving when the two Anys are provably identical, enabling
    sub-shaping); static dims follow NumPy broadcasting.
    """
    if isinstance(a, Any) and isinstance(b, Any):
        # Sub-shaping: identical tokens stay identical in the output.
        return a if same_dim(a, b) else Any()
    if isinstance(a, Any):
        return a if b == 1 else b
    if isinstance(b, Any):
        return b if a == 1 else a
    if a == b:
        return a
    if a == 1:
        return b
    if b == 1:
        return a
    raise TypeInferenceError(f"cannot broadcast dimensions {a} and {b}")


def broadcast_shapes(sa: Sequence[Dim], sb: Sequence[Dim]) -> tuple:
    out: List[Dim] = []
    la, lb = len(sa), len(sb)
    for i in range(max(la, lb)):
        da = sa[la - 1 - i] if i < la else 1
        db = sb[lb - 1 - i] if i < lb else 1
        out.append(broadcast_dim(da, db))
    return tuple(reversed(out))


def broadcast_rel(arg_types: Sequence[Type], attrs: dict) -> Type:
    """Binary broadcasting ops (add, multiply, comparisons, ...)."""
    lhs = expect_tensor(arg_types[0], "broadcast lhs")
    rhs = expect_tensor(arg_types[1], "broadcast rhs")
    if lhs.dtype != rhs.dtype:
        raise TypeInferenceError(
            f"broadcast dtype mismatch: {lhs.dtype} vs {rhs.dtype}"
        )
    out_dtype = attrs.get("out_dtype", lhs.dtype)
    return TensorType(broadcast_shapes(lhs.shape, rhs.shape), out_dtype)


def identity_rel(arg_types: Sequence[Type], attrs: dict) -> Type:
    """Unary elementwise ops keep their input type."""
    return expect_tensor(arg_types[0], "elementwise input")


def unify_dim(a: Dim, b: Dim, what: str) -> Dim:
    """Require two dims to agree; ``Any`` unifies with anything, preferring
    the more specific side (static int wins over Any)."""
    if isinstance(a, Any) and isinstance(b, Any):
        return a if same_dim(a, b) else Any()
    if isinstance(a, Any):
        return b
    if isinstance(b, Any):
        return a
    if a != b:
        raise TypeInferenceError(f"{what}: dimension mismatch {a} vs {b}")
    return a
