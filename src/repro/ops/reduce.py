"""Reduction operators (COMM_REDUCE fusion pattern)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import TypeInferenceError
from repro.ir.types import TensorType, Type
from repro.ops.registry import OpDef, OpPattern, register_op
from repro.ops.shape_funcs import normalize_axis, prod
from repro.ops.type_relations import expect_tensor


def _reduce_axes(ndim: int, attrs) -> List[int]:
    axis = attrs.get("axis")
    if axis is None:
        return list(range(ndim))
    if not isinstance(axis, (list, tuple)):
        axis = [axis]
    return sorted(normalize_axis(a, ndim) for a in axis)


def _reduce_rel_factory(out_dtype: Optional[str] = None):
    def rel(arg_types: Sequence[Type], attrs: dict) -> Type:
        data = expect_tensor(arg_types[0], "reduce data")
        axes = _reduce_axes(data.ndim, attrs)
        keepdims = attrs.get("keepdims", False)
        shape: List = []
        for i, dim in enumerate(data.shape):
            if i in axes:
                if keepdims:
                    shape.append(1)
            else:
                shape.append(dim)
        return TensorType(tuple(shape), out_dtype or data.dtype)

    return rel


def _reduce_shape_func(in_shapes, in_values, attrs):
    shape = in_shapes[0]
    axes = _reduce_axes(len(shape), attrs)
    keepdims = attrs.get("keepdims", False)
    out = []
    for i, dim in enumerate(shape):
        if i in axes:
            if keepdims:
                out.append(1)
        else:
            out.append(dim)
    return [tuple(out)]


def _register_reduce(name: str, np_fn, out_dtype: Optional[str] = None) -> None:
    def compute(inputs, attrs):
        x = inputs[0]
        axes = tuple(_reduce_axes(x.ndim, attrs))
        keepdims = attrs.get("keepdims", False)
        result = np_fn(x, axis=axes, keepdims=keepdims)
        if out_dtype is None:
            result = np.asarray(result).astype(x.dtype, copy=False)
        return np.asarray(result)

    register_op(
        OpDef(
            name=name,
            type_rel=_reduce_rel_factory(out_dtype),
            compute=compute,
            shape_func=_reduce_shape_func,
            pattern=OpPattern.COMM_REDUCE,
            flops=lambda i, o, a: float(prod(i[0])),
        )
    )


_register_reduce("sum", np.sum)
_register_reduce("mean", np.mean)
_register_reduce("max", np.max)
_register_reduce("min", np.min)
_register_reduce("prod", np.prod)


# -- arg reductions (single axis, int64 output) -------------------------------
def _arg_reduce_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "arg-reduce data")
    axis = attrs.get("axis", -1)
    axis = normalize_axis(axis, data.ndim)
    keepdims = attrs.get("keepdims", False)
    shape = list(data.shape)
    if keepdims:
        shape[axis] = 1
    else:
        del shape[axis]
    return TensorType(tuple(shape), "int64")


def _register_arg_reduce(name: str, np_fn) -> None:
    def compute(inputs, attrs):
        x = inputs[0]
        axis = attrs.get("axis", -1)
        result = np_fn(x, axis=axis)
        if attrs.get("keepdims", False):
            result = np.expand_dims(result, axis=axis)
        return result.astype(np.int64)

    def shape_func(in_shapes, in_values, attrs):
        shape = list(in_shapes[0])
        axis = normalize_axis(attrs.get("axis", -1), len(shape))
        if attrs.get("keepdims", False):
            shape[axis] = 1
        else:
            del shape[axis]
        return [tuple(shape)]

    register_op(
        OpDef(
            name=name,
            type_rel=_arg_reduce_rel,
            compute=compute,
            shape_func=shape_func,
            pattern=OpPattern.COMM_REDUCE,
            flops=lambda i, o, a: float(prod(i[0])),
        )
    )


_register_arg_reduce("argmax", np.argmax)
_register_arg_reduce("argmin", np.argmin)
