"""Dynamically-shaped operators (§4.1–4.2).

These are the ops that *force* ``Any`` into the type system:

* ``arange`` — data-dependent: the output length is a function of the
  start/stop/step *values*;
* ``unique`` — data-dependent: output length is the number of distinct
  elements;
* ``vision.non_max_suppression`` — upper-bound: computing the exact output
  shape costs as much as the op itself, so its shape function returns an
  upper bound and the compute returns the *actual* shape alongside the
  data, which the runtime uses to slice the result (§4.2).
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.errors import ShapeError, TypeInferenceError
from repro.ir.types import Any, TensorType, TupleType, Type
from repro.ops.registry import OpDef, OpPattern, ShapeFuncMode, register_op
from repro.ops.type_relations import expect_tensor


# -- arange -------------------------------------------------------------------
def _arange_rel(arg_types, attrs) -> Type:
    # start, stop, step are rank-0 tensors; output length is data-dependent.
    for i, name in enumerate(("start", "stop", "step")):
        t = expect_tensor(arg_types[i], f"arange {name}")
        if t.ndim != 0:
            raise TypeInferenceError(f"arange {name} must be a scalar tensor")
    return TensorType((Any(),), attrs.get("dtype", "float32"))


def _arange_compute(inputs, attrs):
    from repro.tensor.dtype import to_numpy_dtype

    start, stop, step = (np.asarray(x).reshape(()).item() for x in inputs)
    return np.arange(start, stop, step, dtype=to_numpy_dtype(attrs.get("dtype", "float32")))


def _arange_shape_func(in_shapes, in_values, attrs):
    if in_values is None or any(v is None for v in in_values):
        raise ShapeError("arange shape function requires input values (data-dependent)")
    start, stop, step = (np.asarray(v).reshape(()).item() for v in in_values)
    if step == 0:
        raise ShapeError("arange with step 0")
    length = max(0, int(math.ceil((stop - start) / step)))
    return [(length,)]


register_op(
    OpDef(
        name="arange",
        type_rel=_arange_rel,
        compute=_arange_compute,
        shape_func=_arange_shape_func,
        shape_func_mode=ShapeFuncMode.DATA_DEPENDENT,
        pattern=OpPattern.OPAQUE,
    )
)


# -- unique ------------------------------------------------------------------
def _unique_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "unique data")
    if data.ndim != 1:
        raise TypeInferenceError("unique expects a 1-D tensor")
    return TensorType((Any(),), data.dtype)


def _unique_compute(inputs, attrs):
    return np.unique(inputs[0])


def _unique_shape_func(in_shapes, in_values, attrs):
    if in_values is None or in_values[0] is None:
        raise ShapeError("unique shape function requires input values (data-dependent)")
    return [(int(np.unique(in_values[0]).shape[0]),)]


register_op(
    OpDef(
        name="unique",
        type_rel=_unique_rel,
        compute=_unique_compute,
        shape_func=_unique_shape_func,
        shape_func_mode=ShapeFuncMode.DATA_DEPENDENT,
        pattern=OpPattern.OPAQUE,
    )
)


# -- nonzero ------------------------------------------------------------------
def _nonzero_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "nonzero data")
    return TensorType((data.ndim, Any()), "int64")


def _nonzero_compute(inputs, attrs):
    return np.stack(np.nonzero(inputs[0])).astype(np.int64)


def _nonzero_shape_func(in_shapes, in_values, attrs):
    if in_values is None or in_values[0] is None:
        raise ShapeError("nonzero shape function requires input values")
    count = int(np.count_nonzero(in_values[0]))
    return [(len(in_shapes[0]), count)]


register_op(
    OpDef(
        name="nonzero",
        type_rel=_nonzero_rel,
        compute=_nonzero_compute,
        shape_func=_nonzero_shape_func,
        shape_func_mode=ShapeFuncMode.DATA_DEPENDENT,
        pattern=OpPattern.OPAQUE,
    )
)


# -- non-maximum suppression (upper-bound mode) --------------------------------
def _nms_rel(arg_types, attrs) -> Type:
    boxes = expect_tensor(arg_types[0], "nms boxes")  # (N, 4)
    scores = expect_tensor(arg_types[1], "nms scores")  # (N,)
    if boxes.ndim != 2 or scores.ndim != 1:
        raise TypeInferenceError("nms expects boxes (N,4) and scores (N,)")
    return TensorType((Any(),), "int64")


def _nms_reference(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float) -> np.ndarray:
    """Greedy NMS over axis-aligned boxes (x1, y1, x2, y2)."""
    order = np.argsort(-scores)
    keep: List[int] = []
    suppressed = np.zeros(len(scores), dtype=bool)
    areas = np.maximum(0.0, boxes[:, 2] - boxes[:, 0]) * np.maximum(
        0.0, boxes[:, 3] - boxes[:, 1]
    )
    for idx in order:
        if suppressed[idx]:
            continue
        keep.append(int(idx))
        x1 = np.maximum(boxes[idx, 0], boxes[:, 0])
        y1 = np.maximum(boxes[idx, 1], boxes[:, 1])
        x2 = np.minimum(boxes[idx, 2], boxes[:, 2])
        y2 = np.minimum(boxes[idx, 3], boxes[:, 3])
        inter = np.maximum(0.0, x2 - x1) * np.maximum(0.0, y2 - y1)
        union = areas[idx] + areas - inter
        iou = np.where(union > 0, inter / np.maximum(union, 1e-9), 0.0)
        suppressed |= iou > iou_threshold
    return np.asarray(keep, dtype=np.int64)


def _nms_compute(inputs, attrs):
    boxes, scores = inputs
    keep = _nms_reference(boxes, scores, attrs.get("iou_threshold", 0.5))
    # Upper-bound contract: (padded data, actual shape). The buffer is the
    # upper-bound size; the runtime slices to `actual`.
    padded = np.full((boxes.shape[0],), -1, dtype=np.int64)
    padded[: keep.shape[0]] = keep
    return padded, np.asarray(keep.shape, dtype=np.int64)


def _nms_shape_func(in_shapes, in_values, attrs):
    # Cheap upper bound: every box survives.
    return [(in_shapes[0][0],)]


register_op(
    OpDef(
        name="vision.non_max_suppression",
        type_rel=_nms_rel,
        compute=_nms_compute,
        shape_func=_nms_shape_func,
        shape_func_mode=ShapeFuncMode.UPPER_BOUND,
        pattern=OpPattern.OPAQUE,
        returns_shape=True,
        flops=lambda i, o, a: 8.0 * i[0][0] * i[0][0],
    )
)


# -- topk (upper-bound-free but dynamic-k variant is data-dependent) ------------
def _topk_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "topk data")
    k = attrs.get("k")
    if k is None:
        raise TypeInferenceError("topk requires static attribute k")
    shape = list(data.shape)
    shape[-1] = k
    return TupleType(
        [TensorType(tuple(shape), data.dtype), TensorType(tuple(shape), "int64")]
    )


def _topk_compute(inputs, attrs):
    x = inputs[0]
    k = attrs["k"]
    idx = np.argsort(-x, axis=-1)[..., :k]
    values = np.take_along_axis(x, idx, axis=-1)
    return values, idx.astype(np.int64)


def _topk_shape_func(in_shapes, in_values, attrs):
    shape = list(in_shapes[0])
    shape[-1] = attrs["k"]
    return [tuple(shape), tuple(shape)]


register_op(
    OpDef(
        name="topk",
        type_rel=_topk_rel,
        compute=_topk_compute,
        shape_func=_topk_shape_func,
        pattern=OpPattern.OPAQUE,
        num_outputs=2,
        flops=lambda i, o, a: 10.0 * float(np.prod(i[0])) if i[0] else 0.0,
    )
)
