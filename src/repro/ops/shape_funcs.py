"""Shared shape-function helpers (§4.2).

Shape functions run at runtime on concrete shapes. They also perform the
*deferred* type checks that ``Any`` pushed past compile time (gradual
typing): e.g. the broadcast shape function raises :class:`ShapeError` when
an ``Any`` dimension instantiated to neither 1 nor the partner dimension.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ShapeError

Shape = Tuple[int, ...]


def prod(shape: Sequence[int]) -> int:
    n = 1
    for d in shape:
        n *= int(d)
    return n


def broadcast_shape_func(
    in_shapes: Sequence[Shape], in_values, attrs
) -> List[Shape]:
    """Runtime NumPy-broadcasting; raises ShapeError on violation — this is
    the runtime check the paper defers when type relations saw ``Any``."""
    sa, sb = in_shapes[0], in_shapes[1]
    out: List[int] = []
    la, lb = len(sa), len(sb)
    for i in range(max(la, lb)):
        da = sa[la - 1 - i] if i < la else 1
        db = sb[lb - 1 - i] if i < lb else 1
        if da == db or db == 1:
            out.append(da)
        elif da == 1:
            out.append(db)
        else:
            raise ShapeError(
                f"broadcast check failed at runtime: {tuple(sa)} vs {tuple(sb)}"
            )
    return [tuple(reversed(out))]


def same_shape_func(in_shapes: Sequence[Shape], in_values, attrs) -> List[Shape]:
    """Output shape equals the first input's shape."""
    return [tuple(in_shapes[0])]


def scalar_shape_func(in_shapes, in_values, attrs) -> List[Shape]:
    return [()]


def check_rank(shape: Shape, rank: int, what: str) -> None:
    if len(shape) != rank:
        raise ShapeError(f"{what}: expected rank {rank}, got shape {shape}")


def normalize_axis(axis: int, ndim: int) -> int:
    if axis < 0:
        axis += ndim
    if not 0 <= axis < ndim:
        raise ShapeError(f"axis {axis} out of range for rank {ndim}")
    return axis
