"""The operator registry.

Each operator couples five pieces of semantics (mirroring Relay's op
attributes, plus what Nimble adds):

* **type relation** — compile-time: input types (possibly with ``Any``
  dims) → output type (§4.1);
* **shape function** — runtime: concrete input shapes (and, for
  data-dependent ops, input *values*) → concrete output shapes (§4.2), in
  one of three modes (data-independent / data-dependent / upper-bound);
* **compute** — the NumPy kernel body used by every executor;
* **fusion pattern** — how the fusion pass may combine this op (§4.2's
  fusion policy additionally forbids fusing *into* ops whose shape
  functions are data-dependent or upper-bound);
* **flops** — work estimate consumed by the hardware cost model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CompilerError
from repro.ir.op import Op
from repro.ir.types import Type


class OpPattern(enum.IntEnum):
    """Fusion patterns, ordered by generality (TVM's TOPI convention)."""

    ELEMWISE = 0
    BROADCAST = 1
    INJECTIVE = 2
    COMM_REDUCE = 3
    OUT_ELEMWISE_FUSABLE = 4
    OPAQUE = 8


class ShapeFuncMode(enum.Enum):
    """The three shape-function modes of §4.2."""

    DATA_INDEPENDENT = "data_independent"
    DATA_DEPENDENT = "data_dependent"
    UPPER_BOUND = "upper_bound"


# Signature aliases (documentation only; Python stays dynamic).
TypeRel = Callable[[Sequence[Type], dict], Type]
Compute = Callable[[Sequence[np.ndarray], dict], object]
ShapeFunc = Callable[[Sequence[Tuple[int, ...]], Sequence[Optional[np.ndarray]], dict], List[Tuple[int, ...]]]
FlopsFn = Callable[[Sequence[Tuple[int, ...]], Sequence[Tuple[int, ...]], dict], float]


def _default_flops(in_shapes, out_shapes, attrs) -> float:
    """Default work estimate: one op per output element."""
    total = 0.0
    for shape in out_shapes:
        n = 1.0
        for d in shape:
            n *= d
        total += n
    return total


@dataclass
class OpDef:
    name: str
    type_rel: TypeRel
    compute: Compute
    shape_func: Optional[ShapeFunc] = None
    shape_func_mode: ShapeFuncMode = ShapeFuncMode.DATA_INDEPENDENT
    pattern: OpPattern = OpPattern.OPAQUE
    flops: FlopsFn = _default_flops
    num_outputs: int = 1
    # Upper-bound ops return (data..., actual_shape) from compute; the
    # runtime slices outputs down to the actual shape (§4.2).
    returns_shape: bool = False

    @property
    def is_dynamic_shape_func(self) -> bool:
        """True when fusing other ops *into* this op is forbidden (§4.2)."""
        return self.shape_func_mode in (
            ShapeFuncMode.DATA_DEPENDENT,
            ShapeFuncMode.UPPER_BOUND,
        )


_REGISTRY: Dict[str, OpDef] = {}


def register_op(op_def: OpDef) -> OpDef:
    if op_def.name in _REGISTRY:
        raise CompilerError(f"operator {op_def.name!r} registered twice")
    _REGISTRY[op_def.name] = op_def
    Op.get(op_def.name)  # intern the IR node
    return op_def


def get_op_def(name: str) -> OpDef:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CompilerError(f"unknown operator {name!r}") from None


def has_op(name: str) -> bool:
    return name in _REGISTRY


def all_op_names() -> List[str]:
    return sorted(_REGISTRY)
