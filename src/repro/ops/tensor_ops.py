"""Elementwise and broadcast operators.

These are the ELEMWISE/BROADCAST fusion-pattern ops that the fusion pass
folds into preceding compute-heavy kernels. All computes are vectorized
NumPy; outputs are cast back to the declared dtype so fused groups stay
dtype-stable.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy.special import erf as _scipy_erf

from repro.errors import TypeInferenceError
from repro.ir.types import TensorType, Type
from repro.ops.registry import OpDef, OpPattern, ShapeFuncMode, register_op
from repro.ops.shape_funcs import broadcast_shape_func, same_shape_func
from repro.ops.type_relations import broadcast_rel, expect_tensor, identity_rel


def _unary(name: str, fn: Callable[[np.ndarray], np.ndarray], flop_per_elem: float = 1.0) -> None:
    def compute(inputs, attrs):
        x = inputs[0]
        return fn(x).astype(x.dtype, copy=False)

    def flops(in_shapes, out_shapes, attrs):
        n = 1.0
        for d in out_shapes[0]:
            n *= d
        return n * flop_per_elem

    register_op(
        OpDef(
            name=name,
            type_rel=identity_rel,
            compute=compute,
            shape_func=same_shape_func,
            shape_func_mode=ShapeFuncMode.DATA_INDEPENDENT,
            pattern=OpPattern.ELEMWISE,
            flops=flops,
        )
    )


def _binary(name: str, fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> None:
    def compute(inputs, attrs):
        a, b = inputs
        return fn(a, b).astype(np.result_type(a.dtype), copy=False)

    register_op(
        OpDef(
            name=name,
            type_rel=broadcast_rel,
            compute=compute,
            shape_func=broadcast_shape_func,
            shape_func_mode=ShapeFuncMode.DATA_INDEPENDENT,
            pattern=OpPattern.BROADCAST,
        )
    )


def _comparison(name: str, fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> None:
    def rel(arg_types: Sequence[Type], attrs: dict) -> Type:
        base = broadcast_rel(arg_types, attrs)
        return TensorType(base.shape, "bool")

    def compute(inputs, attrs):
        return fn(inputs[0], inputs[1])

    register_op(
        OpDef(
            name=name,
            type_rel=rel,
            compute=compute,
            shape_func=broadcast_shape_func,
            shape_func_mode=ShapeFuncMode.DATA_INDEPENDENT,
            pattern=OpPattern.BROADCAST,
        )
    )


# -- arithmetic -------------------------------------------------------------
_binary("add", np.add)
_binary("subtract", np.subtract)
_binary("multiply", np.multiply)
_binary("divide", np.divide)
_binary("maximum", np.maximum)
_binary("minimum", np.minimum)
_binary("power", np.power)

# -- unary math ------------------------------------------------------------
_unary("negative", np.negative)
_unary("exp", np.exp, flop_per_elem=4.0)
_unary("log", np.log, flop_per_elem=4.0)
_unary("sqrt", np.sqrt, flop_per_elem=2.0)
_unary("rsqrt", lambda x: 1.0 / np.sqrt(x), flop_per_elem=3.0)
_unary("tanh", np.tanh, flop_per_elem=6.0)
_unary("sigmoid", lambda x: 1.0 / (1.0 + np.exp(-x)), flop_per_elem=6.0)
_unary("erf", _scipy_erf, flop_per_elem=8.0)
_unary("abs", np.abs)
_unary("copy", lambda x: x.copy(), flop_per_elem=0.0)

# -- comparisons ------------------------------------------------------------
_comparison("equal", np.equal)
_comparison("not_equal", np.not_equal)
_comparison("less", np.less)
_comparison("less_equal", np.less_equal)
_comparison("greater", np.greater)
_comparison("greater_equal", np.greater_equal)
_comparison("logical_and", np.logical_and)
_comparison("logical_or", np.logical_or)


def _logical_not_compute(inputs, attrs):
    return np.logical_not(inputs[0])


register_op(
    OpDef(
        name="logical_not",
        type_rel=identity_rel,
        compute=_logical_not_compute,
        shape_func=same_shape_func,
        pattern=OpPattern.ELEMWISE,
    )
)


# -- cast ---------------------------------------------------------------------
def _cast_rel(arg_types, attrs) -> Type:
    src = expect_tensor(arg_types[0], "cast input")
    dtype = attrs.get("dtype")
    if dtype is None:
        raise TypeInferenceError("cast requires a 'dtype' attribute")
    return TensorType(src.shape, dtype)


def _cast_compute(inputs, attrs):
    from repro.tensor.dtype import to_numpy_dtype

    return inputs[0].astype(to_numpy_dtype(attrs["dtype"]))


register_op(
    OpDef(
        name="cast",
        type_rel=_cast_rel,
        compute=_cast_compute,
        shape_func=same_shape_func,
        pattern=OpPattern.ELEMWISE,
    )
)


# -- where (select) ----------------------------------------------------------
def _where_rel(arg_types, attrs) -> Type:
    cond = expect_tensor(arg_types[0], "where condition")
    lhs = expect_tensor(arg_types[1], "where lhs")
    rhs = expect_tensor(arg_types[2], "where rhs")
    if lhs.dtype != rhs.dtype:
        raise TypeInferenceError("where branches must share a dtype")
    merged = broadcast_rel([lhs, rhs], {})
    merged = broadcast_rel([TensorType(cond.shape, lhs.dtype), merged], {})
    return TensorType(merged.shape, lhs.dtype)


def _where_compute(inputs, attrs):
    cond, lhs, rhs = inputs
    return np.where(cond, lhs, rhs).astype(lhs.dtype, copy=False)


def _where_shape_func(in_shapes, in_values, attrs):
    step = broadcast_shape_func(in_shapes[1:], None, attrs)[0]
    return broadcast_shape_func([in_shapes[0], step], None, attrs)


register_op(
    OpDef(
        name="where",
        type_rel=_where_rel,
        compute=_where_compute,
        shape_func=_where_shape_func,
        pattern=OpPattern.BROADCAST,
    )
)


# -- relu/clip (kept here with the other cheap elementwise ops) ---------------
_unary("nn.relu", lambda x: np.maximum(x, 0))


def _clip_compute(inputs, attrs):
    return np.clip(inputs[0], attrs.get("a_min", 0.0), attrs.get("a_max", float("inf")))


register_op(
    OpDef(
        name="clip",
        type_rel=identity_rel,
        compute=_clip_compute,
        shape_func=same_shape_func,
        pattern=OpPattern.ELEMWISE,
    )
)
