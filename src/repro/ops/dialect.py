"""The memory / VM / device dialect ops (§4.3–4.4).

After the manifest-allocation pass, memory is explicit in the IR via the
four constructs of §4.3 — ``alloc_storage``, ``alloc_tensor``,
``invoke_mut`` and ``kill`` — plus the placement constructs of §4.4 —
``device_copy`` and ``shape_of`` — and the shape-function invocation
``vm.shape_func``. Representing them as ordinary operators (as Relay's
memory dialect does) keeps every later pass a plain expression rewrite.

These ops are OPAQUE to fusion and are lowered specially by the VM
compiler; they have no standalone computes (the VM interprets them).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CompilerError, TypeInferenceError
from repro.ir.types import Any, StorageType, TensorType, TupleType, Type
from repro.ops.registry import OpDef, OpPattern, ShapeFuncMode, register_op
from repro.ops.type_relations import expect_tensor

UNIT = TupleType(())


def _no_compute(name: str):
    def compute(inputs, attrs):
        raise CompilerError(f"dialect op {name} has no standalone compute; "
                            "it is interpreted by the VM")

    return compute


# -- memory.alloc_storage(size) -> Storage ------------------------------------
def _alloc_storage_rel(arg_types, attrs) -> Type:
    size = expect_tensor(arg_types[0], "alloc_storage size")
    if size.dtype != "int64":
        raise TypeInferenceError("alloc_storage size must be int64")
    return StorageType()


register_op(
    OpDef(
        name="memory.alloc_storage",
        type_rel=_alloc_storage_rel,
        compute=_no_compute("memory.alloc_storage"),
        pattern=OpPattern.OPAQUE,
    )
)


# -- memory.alloc_tensor(storage, offset, shape?) -> Tensor ---------------------
def _alloc_tensor_rel(arg_types, attrs) -> Type:
    if not isinstance(arg_types[0], StorageType):
        raise TypeInferenceError("alloc_tensor expects a Storage first argument")
    ttype = attrs.get("ttype")
    if not isinstance(ttype, TensorType):
        raise TypeInferenceError("alloc_tensor requires a 'ttype' TensorType attr")
    return ttype


register_op(
    OpDef(
        name="memory.alloc_tensor",
        type_rel=_alloc_tensor_rel,
        compute=_no_compute("memory.alloc_tensor"),
        pattern=OpPattern.OPAQUE,
    )
)


# -- memory.kill(tensor) -> () ---------------------------------------------------
register_op(
    OpDef(
        name="memory.kill",
        type_rel=lambda ts, attrs: UNIT,
        compute=_no_compute("memory.kill"),
        pattern=OpPattern.OPAQUE,
    )
)


# -- vm.invoke_mut(func, (inputs), (outputs)) -> () -------------------------------
def _invoke_mut_rel(arg_types, attrs) -> Type:
    if len(arg_types) != 3:
        raise TypeInferenceError("invoke_mut expects (func, inputs, outputs)")
    return UNIT


register_op(
    OpDef(
        name="vm.invoke_mut",
        type_rel=_invoke_mut_rel,
        compute=_no_compute("vm.invoke_mut"),
        pattern=OpPattern.OPAQUE,
    )
)


# -- vm.shape_func((inputs)) -> shape tensor(s) --------------------------------------
def _shape_func_rel(arg_types, attrs) -> Type:
    num_outputs = attrs.get("num_outputs", 1)
    out_ranks = attrs.get("out_ranks")
    if out_ranks is None:
        raise TypeInferenceError("vm.shape_func requires 'out_ranks' attr")
    fields = [TensorType((rank,), "int64") for rank in out_ranks]
    return fields[0] if num_outputs == 1 else TupleType(fields)


register_op(
    OpDef(
        name="vm.shape_func",
        type_rel=_shape_func_rel,
        compute=_no_compute("vm.shape_func"),
        pattern=OpPattern.OPAQUE,
    )
)


# -- vm.storage_size(shape) -> int64 scalar --------------------------------------------
def _storage_size_rel(arg_types, attrs) -> Type:
    shape = expect_tensor(arg_types[0], "storage_size shape")
    if shape.dtype != "int64" or shape.ndim != 1:
        raise TypeInferenceError("storage_size expects an int64 shape vector")
    return TensorType((), "int64")


def _storage_size_compute(inputs, attrs):
    from repro.tensor.dtype import dtype_bytes

    nelems = int(np.prod(inputs[0])) if inputs[0].size else 1
    return np.asarray(nelems * dtype_bytes(attrs["dtype"]), dtype=np.int64)


register_op(
    OpDef(
        name="vm.storage_size",
        type_rel=_storage_size_rel,
        compute=_storage_size_compute,
        shape_func=lambda s, v, a: [()],
        pattern=OpPattern.OPAQUE,
        flops=lambda i, o, a: float(i[0][0]) if i and i[0] else 1.0,
    )
)


# -- vm.shape_of(tensor) -> int64 vector ---------------------------------------------
def _shape_of_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "shape_of data")
    return TensorType((data.ndim,), "int64")


def _shape_of_compute(inputs, attrs):
    return np.asarray(inputs[0].shape, dtype=np.int64)


register_op(
    OpDef(
        name="vm.shape_of",
        type_rel=_shape_of_rel,
        compute=_shape_of_compute,
        pattern=OpPattern.OPAQUE,
    )
)


# -- device.device_copy(tensor) --------------------------------------------------------
def _device_copy_rel(arg_types, attrs) -> Type:
    return expect_tensor(arg_types[0], "device_copy data")


register_op(
    OpDef(
        name="device.device_copy",
        type_rel=_device_copy_rel,
        compute=lambda inputs, attrs: inputs[0],
        pattern=OpPattern.OPAQUE,
    )
)


# -- vm.reshape_tensor(data, shape) — metadata-only reshape ------------------------------
def _reshape_tensor_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "reshape_tensor data")
    newshape = attrs.get("newshape")
    if newshape is None:
        raise TypeInferenceError("vm.reshape_tensor requires 'newshape'")
    return TensorType(tuple(newshape), data.dtype)


register_op(
    OpDef(
        name="vm.reshape_tensor",
        type_rel=_reshape_tensor_rel,
        compute=lambda inputs, attrs: inputs[0].reshape(
            tuple(int(d) for d in np.asarray(inputs[1]))
        ),
        pattern=OpPattern.OPAQUE,
    )
)


# -- vm.slice_upper_bound(data, actual_shape) -------------------------------------------
def _slice_ub_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "slice_upper_bound data")
    return TensorType(tuple(Any() for _ in data.shape), data.dtype)


def _slice_ub_compute(inputs, attrs):
    data, actual = inputs
    index = tuple(slice(0, int(d)) for d in np.asarray(actual))
    return np.ascontiguousarray(data[index])


register_op(
    OpDef(
        name="vm.slice_upper_bound",
        type_rel=_slice_ub_rel,
        compute=_slice_ub_compute,
        # For cost analysis the output is bounded by the padded input; the
        # real shape comes from the `actual` operand at runtime.
        shape_func=lambda s, v, a: [tuple(s[0])],
        pattern=OpPattern.OPAQUE,
        flops=lambda i, o, a: 0.0,
    )
)

DIALECT_OPS = frozenset(
    {
        "memory.alloc_storage",
        "memory.alloc_tensor",
        "memory.kill",
        "vm.invoke_mut",
        "vm.shape_func",
        "vm.shape_of",
        "vm.storage_size",
        "vm.alloc_closure",
        "device.device_copy",
        "vm.reshape_tensor",
        "vm.slice_upper_bound",
    }
)
