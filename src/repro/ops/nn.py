"""Neural-network operators: the compute-intensive kernels.

``nn.dense`` / ``nn.batch_matmul`` are the OUT_ELEMWISE_FUSABLE anchors the
fusion pass attaches elementwise epilogues to, and the ops whose symbolic
codegen / residue dispatch Figure 3 measures. ``nn.conv2d`` and pooling
exist for the CV models of the §6.3 memory-footprint study.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ShapeError, TypeInferenceError
from repro.ir.types import Any, TensorType, TupleType, Type
from repro.ops.registry import OpDef, OpPattern, ShapeFuncMode, register_op
from repro.ops.shape_funcs import check_rank, normalize_axis, prod, same_shape_func
from repro.ops.type_relations import expect_tensor, unify_dim


# -- dense --------------------------------------------------------------------
def _dense_rel(arg_types: Sequence[Type], attrs: dict) -> Type:
    data = expect_tensor(arg_types[0], "dense data")
    weight = expect_tensor(arg_types[1], "dense weight")
    if data.ndim < 1 or weight.ndim != 2:
        raise TypeInferenceError(f"dense: bad ranks {data!r} @ {weight!r}")
    unify_dim(data.shape[-1], weight.shape[1], "dense reduction axis")
    return TensorType(data.shape[:-1] + (weight.shape[0],), data.dtype)


def _dense_compute(inputs, attrs):
    data, weight = inputs
    return (data @ weight.T).astype(data.dtype, copy=False)


def _dense_shape_func(in_shapes, in_values, attrs):
    d, w = in_shapes
    if d[-1] != w[1]:
        raise ShapeError(f"dense runtime check failed: {d} @ {w}")
    return [tuple(d[:-1]) + (w[0],)]


def _dense_flops(in_shapes, out_shapes, attrs):
    d, w = in_shapes
    return 2.0 * prod(d[:-1]) * w[0] * w[1]


register_op(
    OpDef(
        name="nn.dense",
        type_rel=_dense_rel,
        compute=_dense_compute,
        shape_func=_dense_shape_func,
        pattern=OpPattern.OUT_ELEMWISE_FUSABLE,
        flops=_dense_flops,
    )
)


# -- batch-specialized dense --------------------------------------------------
def _batch_dense_rel(arg_types: Sequence[Type], attrs: dict) -> Type:
    data = expect_tensor(arg_types[0], "batch_dense data")
    weight = expect_tensor(arg_types[1], "batch_dense weight")
    if data.ndim != 2 or weight.ndim != 2:
        raise TypeInferenceError(f"batch_dense: bad ranks {data!r} @ {weight!r}")
    unify_dim(data.shape[-1], weight.shape[1], "batch_dense reduction axis")
    batch = int(attrs.get("batch", 1))
    if batch < 1:
        raise TypeInferenceError(f"batch_dense: batch must be >= 1, got {batch}")
    rows = data.shape[0]
    if not isinstance(rows, Any) and rows % batch != 0:
        raise TypeInferenceError(
            f"batch_dense: {rows} stacked rows not divisible by batch {batch}"
        )
    return TensorType((rows, weight.shape[0]), data.dtype)


def _batch_dense_compute(inputs, attrs):
    """One modeled batched GEMM whose *numerics* run member-by-member.

    The batch-specialized tier must be bit-identical with the member-wise
    tiers, but BLAS GEMM results are not row-stable across different M
    (stacking B members into one ``(B·L, K) @ (K, N)`` call perturbs the
    last bits vs. B separate ``(L, K)`` calls). The simulated hardware
    therefore *prices* this op as a single batched GEMM (launch overhead,
    saturation, flops — see the cost model's GEMM handling) while the
    reference numerics slice the stacked input back into members and run
    the exact computation the member tier runs."""
    data, weight = inputs
    batch = int(attrs.get("batch", 1))
    if batch <= 1 or data.shape[0] % batch != 0:
        return _dense_compute((data, weight), attrs)
    rows = data.shape[0] // batch
    parts = [
        _dense_compute(
            (np.ascontiguousarray(data[i * rows : (i + 1) * rows]), weight), attrs
        )
        for i in range(batch)
    ]
    return np.concatenate(parts, axis=0)


def _batch_dense_shape_func(in_shapes, in_values, attrs):
    d, w = in_shapes
    if d[-1] != w[1] or d[0] % int(attrs.get("batch", 1)) != 0:
        raise ShapeError(f"batch_dense runtime check failed: {d} @ {w}")
    return [(d[0], w[0])]


register_op(
    OpDef(
        name="nn.batch_dense",
        type_rel=_batch_dense_rel,
        compute=_batch_dense_compute,
        shape_func=_batch_dense_shape_func,
        pattern=OpPattern.OUT_ELEMWISE_FUSABLE,
        flops=_dense_flops,
    )
)


# -- bias add --------------------------------------------------------------
def _bias_add_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "bias_add data")
    bias = expect_tensor(arg_types[1], "bias_add bias")
    if bias.ndim != 1:
        raise TypeInferenceError("bias_add: bias must be rank 1")
    axis = attrs.get("axis", -1)
    unify_dim(data.shape[axis], bias.shape[0], "bias_add channel axis")
    return data


def _bias_add_compute(inputs, attrs):
    data, bias = inputs
    axis = attrs.get("axis", -1)
    if axis < 0:
        axis += data.ndim
    shape = [1] * data.ndim
    shape[axis] = bias.shape[0]
    return (data + bias.reshape(shape)).astype(data.dtype, copy=False)


register_op(
    OpDef(
        name="nn.bias_add",
        type_rel=_bias_add_rel,
        compute=_bias_add_compute,
        shape_func=same_shape_func,
        pattern=OpPattern.BROADCAST,
    )
)


# -- batch matmul -------------------------------------------------------------
def _batch_matmul_rel(arg_types, attrs) -> Type:
    a = expect_tensor(arg_types[0], "batch_matmul lhs")
    b = expect_tensor(arg_types[1], "batch_matmul rhs")
    if a.ndim != 3 or b.ndim != 3:
        raise TypeInferenceError("batch_matmul expects rank-3 inputs")
    batch = unify_dim(a.shape[0], b.shape[0], "batch_matmul batch")
    # Relay convention: B is (batch, N, K); output (batch, M, N).
    unify_dim(a.shape[2], b.shape[2], "batch_matmul reduction")
    return TensorType((batch, a.shape[1], b.shape[1]), a.dtype)


def _batch_matmul_compute(inputs, attrs):
    a, b = inputs
    return np.matmul(a, b.transpose(0, 2, 1)).astype(a.dtype, copy=False)


def _batch_matmul_shape_func(in_shapes, in_values, attrs):
    a, b = in_shapes
    if a[0] != b[0] or a[2] != b[2]:
        raise ShapeError(f"batch_matmul runtime check failed: {a} x {b}")
    return [(a[0], a[1], b[1])]


def _batch_matmul_flops(in_shapes, out_shapes, attrs):
    a, b = in_shapes
    return 2.0 * a[0] * a[1] * b[1] * a[2]


register_op(
    OpDef(
        name="nn.batch_matmul",
        type_rel=_batch_matmul_rel,
        compute=_batch_matmul_compute,
        shape_func=_batch_matmul_shape_func,
        pattern=OpPattern.OUT_ELEMWISE_FUSABLE,
        flops=_batch_matmul_flops,
    )
)


# -- softmax ----------------------------------------------------------------
def _softmax_compute(inputs, attrs):
    x = inputs[0]
    axis = attrs.get("axis", -1)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return (e / np.sum(e, axis=axis, keepdims=True)).astype(x.dtype, copy=False)


def _softmax_flops(in_shapes, out_shapes, attrs):
    return 8.0 * prod(in_shapes[0])


register_op(
    OpDef(
        name="nn.softmax",
        type_rel=lambda ts, attrs: expect_tensor(ts[0], "softmax"),
        compute=_softmax_compute,
        shape_func=same_shape_func,
        pattern=OpPattern.OUT_ELEMWISE_FUSABLE,
        flops=_softmax_flops,
    )
)


def _log_softmax_compute(inputs, attrs):
    x = inputs[0]
    axis = attrs.get("axis", -1)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return (shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))).astype(
        x.dtype, copy=False
    )


register_op(
    OpDef(
        name="nn.log_softmax",
        type_rel=lambda ts, attrs: expect_tensor(ts[0], "log_softmax"),
        compute=_log_softmax_compute,
        shape_func=same_shape_func,
        pattern=OpPattern.OUT_ELEMWISE_FUSABLE,
        flops=_softmax_flops,
    )
)


# -- layer norm --------------------------------------------------------------
def _layer_norm_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "layer_norm data")
    gamma = expect_tensor(arg_types[1], "layer_norm gamma")
    beta = expect_tensor(arg_types[2], "layer_norm beta")
    axis = attrs.get("axis", -1)
    unify_dim(data.shape[axis], gamma.shape[0], "layer_norm gamma")
    unify_dim(data.shape[axis], beta.shape[0], "layer_norm beta")
    return data


def _layer_norm_compute(inputs, attrs):
    x, gamma, beta = inputs
    axis = attrs.get("axis", -1)
    eps = attrs.get("epsilon", 1e-5)
    mean = np.mean(x, axis=axis, keepdims=True)
    var = np.var(x, axis=axis, keepdims=True)
    return ((x - mean) / np.sqrt(var + eps) * gamma + beta).astype(x.dtype, copy=False)


register_op(
    OpDef(
        name="nn.layer_norm",
        type_rel=_layer_norm_rel,
        compute=_layer_norm_compute,
        shape_func=same_shape_func,
        pattern=OpPattern.OUT_ELEMWISE_FUSABLE,
        flops=lambda i, o, a: 8.0 * prod(i[0]),
    )
)


# -- gelu (BERT's activation; composed of erf but kept fused as one op) -------
def _gelu_compute(inputs, attrs):
    from scipy.special import erf

    x = inputs[0]
    return (0.5 * x * (1.0 + erf(x / np.sqrt(2.0)))).astype(x.dtype, copy=False)


register_op(
    OpDef(
        name="nn.gelu",
        type_rel=lambda ts, attrs: expect_tensor(ts[0], "gelu"),
        compute=_gelu_compute,
        shape_func=same_shape_func,
        pattern=OpPattern.ELEMWISE,
        flops=lambda i, o, a: 12.0 * prod(i[0]),
    )
)


# -- embedding lookup is `take` (see transform.py) ----------------------------


# -- conv2d (NCHW, used by the CV models in the memory study) -----------------
def _conv_out_dim(in_dim, kernel, stride, pad):
    if isinstance(in_dim, Any):
        return Any()
    return (in_dim + 2 * pad - kernel) // stride + 1


def _conv2d_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "conv2d data")
    weight = expect_tensor(arg_types[1], "conv2d weight")
    if data.ndim != 4 or weight.ndim != 4:
        raise TypeInferenceError("conv2d expects NCHW data and OIHW weight")
    stride = attrs.get("strides", 1)
    pad = attrs.get("padding", 0)
    groups = attrs.get("groups", 1)
    kh, kw = weight.shape[2], weight.shape[3]
    if isinstance(weight.shape[1], int) and isinstance(data.shape[1], int):
        if weight.shape[1] * groups != data.shape[1]:
            raise TypeInferenceError(
                f"conv2d channel mismatch: data C={data.shape[1]}, "
                f"weight I={weight.shape[1]}, groups={groups}"
            )
    oh = _conv_out_dim(data.shape[2], kh, stride, pad)
    ow = _conv_out_dim(data.shape[3], kw, stride, pad)
    return TensorType((data.shape[0], weight.shape[0], oh, ow), data.dtype)


def _conv2d_compute(inputs, attrs):
    data, weight = inputs
    stride = attrs.get("strides", 1)
    pad = attrs.get("padding", 0)
    groups = attrs.get("groups", 1)
    n, c, h, w = data.shape
    oc, ic, kh, kw = weight.shape
    if pad:
        data = np.pad(data, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (data.shape[2] - kh) // stride + 1
    ow = (data.shape[3] - kw) // stride + 1
    out = np.empty((n, oc, oh, ow), dtype=data.dtype)
    cg = c // groups  # input channels per group
    og = oc // groups  # output channels per group
    for g in range(groups):
        dg = data[:, g * cg : (g + 1) * cg]
        wg = weight[g * og : (g + 1) * og]
        # im2col: patches (n, oh, ow, cg*kh*kw) @ (og, cg*kh*kw)^T
        cols = np.lib.stride_tricks.sliding_window_view(dg, (kh, kw), axis=(2, 3))
        cols = cols[:, :, ::stride, ::stride]  # (n, cg, oh, ow, kh, kw)
        cols = cols.transpose(0, 2, 3, 1, 4, 5).reshape(n, oh, ow, cg * kh * kw)
        wmat = wg.reshape(og, cg * kh * kw)
        out[:, g * og : (g + 1) * og] = np.einsum(
            "nhwk,ok->nohw", cols, wmat, optimize=True
        ).astype(data.dtype, copy=False)
    return out


def _conv2d_shape_func(in_shapes, in_values, attrs):
    d, w = in_shapes
    stride = attrs.get("strides", 1)
    pad = attrs.get("padding", 0)
    oh = (d[2] + 2 * pad - w[2]) // stride + 1
    ow = (d[3] + 2 * pad - w[3]) // stride + 1
    return [(d[0], w[0], oh, ow)]


def _conv2d_flops(in_shapes, out_shapes, attrs):
    d, w = in_shapes
    o = out_shapes[0]
    groups = attrs.get("groups", 1)
    return 2.0 * prod(o) * (w[1] * w[2] * w[3])


register_op(
    OpDef(
        name="nn.conv2d",
        type_rel=_conv2d_rel,
        compute=_conv2d_compute,
        shape_func=_conv2d_shape_func,
        pattern=OpPattern.OUT_ELEMWISE_FUSABLE,
        flops=_conv2d_flops,
    )
)


# -- pooling -----------------------------------------------------------------
def _pool_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "pool data")
    if data.ndim != 4:
        raise TypeInferenceError("pool expects NCHW")
    k = attrs.get("pool_size", 2)
    s = attrs.get("strides", k)
    p = attrs.get("padding", 0)
    oh = _conv_out_dim(data.shape[2], k, s, p)
    ow = _conv_out_dim(data.shape[3], k, s, p)
    return TensorType((data.shape[0], data.shape[1], oh, ow), data.dtype)


def _pool_compute_factory(reduce_fn):
    def compute(inputs, attrs):
        x = inputs[0]
        k = attrs.get("pool_size", 2)
        s = attrs.get("strides", k)
        p = attrs.get("padding", 0)
        if p:
            pad_value = -np.inf if reduce_fn is np.max else 0.0
            x = np.pad(
                x, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=pad_value
            )
        windows = np.lib.stride_tricks.sliding_window_view(x, (k, k), axis=(2, 3))
        windows = windows[:, :, ::s, ::s]
        return reduce_fn(windows, axis=(-2, -1)).astype(x.dtype, copy=False)

    return compute


def _pool_shape_func(in_shapes, in_values, attrs):
    d = in_shapes[0]
    k = attrs.get("pool_size", 2)
    s = attrs.get("strides", k)
    p = attrs.get("padding", 0)
    oh = (d[2] + 2 * p - k) // s + 1
    ow = (d[3] + 2 * p - k) // s + 1
    return [(d[0], d[1], oh, ow)]


register_op(
    OpDef(
        name="nn.max_pool2d",
        type_rel=_pool_rel,
        compute=_pool_compute_factory(np.max),
        shape_func=_pool_shape_func,
        pattern=OpPattern.INJECTIVE,
    )
)

register_op(
    OpDef(
        name="nn.avg_pool2d",
        type_rel=_pool_rel,
        compute=_pool_compute_factory(np.mean),
        shape_func=_pool_shape_func,
        pattern=OpPattern.INJECTIVE,
    )
)


def _gap_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "global_avg_pool2d")
    return TensorType((data.shape[0], data.shape[1], 1, 1), data.dtype)


register_op(
    OpDef(
        name="nn.global_avg_pool2d",
        type_rel=_gap_rel,
        compute=lambda inputs, attrs: np.mean(
            inputs[0], axis=(2, 3), keepdims=True
        ).astype(inputs[0].dtype, copy=False),
        shape_func=lambda s, v, a: [(s[0][0], s[0][1], 1, 1)],
        pattern=OpPattern.COMM_REDUCE,
    )
)


# -- inference-mode batch norm (folded scale/shift) ---------------------------
def _batch_norm_rel(arg_types, attrs) -> Type:
    data = expect_tensor(arg_types[0], "batch_norm data")
    return data


def _batch_norm_compute(inputs, attrs):
    x, gamma, beta, mean, var = inputs
    eps = attrs.get("epsilon", 1e-5)
    shape = [1] * x.ndim
    shape[1] = gamma.shape[0]
    scale = (gamma / np.sqrt(var + eps)).reshape(shape)
    shift = (beta - mean * gamma / np.sqrt(var + eps)).reshape(shape)
    return (x * scale + shift).astype(x.dtype, copy=False)


register_op(
    OpDef(
        name="nn.batch_norm_inference",
        type_rel=_batch_norm_rel,
        compute=_batch_norm_compute,
        shape_func=same_shape_func,
        pattern=OpPattern.BROADCAST,
    )
)
