"""The versioned artifact store: content-addressed executables + the
persisted kernel cache.

Directory layout (specified in ``docs/serialization.md``)::

    <artifact_dir>/
        STORE_FORMAT            # one line: the store-format version
        artifacts/<key>.nmbl     # Executable.save() blobs, content-addressed
        artifacts/<key>.nmblp    # SpecializationPrefix.save() blobs
        artifacts/<key>.nmblprof # ShapeProfile.save() blobs (shape traffic)
        kernels.kc               # KernelCache.export_entries() blob

``<key>`` is :func:`repro.vm.executable.artifact_key` — a sha256 over
(source-module fingerprint, platform, shape binding, batch marker,
serialization version). Content addressing makes staleness structural:
a serialization-format bump changes every key, so old blobs are never
looked up; a model or platform change changes the fingerprint
component, so a store can safely hold artifacts for many modules and
platforms side by side.

Writes are atomic (temp file + ``os.replace``), so a killed server
never leaves a half-written artifact where a restarted one will look.
Reads are *paranoid*: a blob that is truncated, version-bumped,
hash-mismatched, or compiled from a different module is skipped, its
rejection recorded in :attr:`ArtifactStore.rejects`, and the caller
falls back to compiling — the store can lose data, but it must never
serve wrong code.

Concurrent readers (a fleet of replicas over one volume — see
``docs/fleet.md``) need no locking because of those two properties
together: ``os.replace`` means a reader sees either the old complete
blob or the new complete blob, never a torn write, and the paranoid
validation means a reader that loses any conceivable race (a blob
deleted between listing and read, an overwrite it half-expected)
degrades to a counted reject + recompile, never to wrong code. The
same holds against :class:`repro.store.StoreGC` deletions: ``remove``
is a single ``unlink``, so a reader either got the blob or gets a
miss.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.codegen.kernels import KernelCache
from repro.errors import SerializationError
from repro.vm.executable import Executable

# Version of the directory layout itself (not of the blobs inside it —
# executables carry their own serialization version). A store written
# under a different format is refused at open, before any blob is read.
STORE_FORMAT = 1

_ARTIFACT_SUFFIX = ".nmbl"
_PREFIX_SUFFIX = ".nmblp"
_PROFILE_SUFFIX = ".nmblprof"


class ArtifactStore:
    """A content-addressed, versioned directory of compiled artifacts.

    ``put`` files an executable under its content hash; ``get`` loads
    one back, returning ``None`` (and counting a reject) for anything
    that fails validation. One store instance may serve many modules and
    platforms — keys collide only when every identity component matches.
    """

    def __init__(self, root, verify: bool = True) -> None:
        self.root = Path(root)
        # Statically verify every loaded executable (repro.analysis): a
        # blob that deserializes cleanly but fails verification is
        # rejected-and-counted exactly like a corrupt one — it is never
        # handed to a VM. Disable only for forensics on bad blobs.
        self.verify = verify
        self.artifacts_dir = self.root / "artifacts"
        self.artifacts_dir.mkdir(parents=True, exist_ok=True)
        self._format_file = self.root / "STORE_FORMAT"
        if self._format_file.exists():
            try:
                found = int(self._format_file.read_text().strip())
            except ValueError:
                raise SerializationError(
                    f"artifact store at {self.root}: unreadable STORE_FORMAT"
                )
            if found != STORE_FORMAT:
                raise SerializationError(
                    f"artifact store at {self.root} uses format {found}, "
                    f"this build reads format {STORE_FORMAT}"
                )
        else:
            self._atomic_write(self._format_file, f"{STORE_FORMAT}\n".encode())
        # Rejected loads this process: (key, reason) pairs. A reject is
        # an expected, recoverable event (the caller recompiles), but it
        # must be *visible* — silent fallback would mask a corrupted
        # volume until someone wonders why restarts stopped being warm.
        self.reject_log: List[Tuple[str, str]] = []
        # The subset of rejects that deserialized fine but failed static
        # verification — tracked separately because they mean a *writer*
        # bug (or post-write tampering), not volume rot.
        self.verify_reject_log: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------ stats
    @property
    def rejects(self) -> int:
        """How many artifact loads this process refused (corrupt,
        truncated, stale-version, signature-mismatched, or
        verification-failed blobs)."""
        return len(self.reject_log)

    @property
    def verify_rejects(self) -> int:
        """How many rejects were static-verification failures."""
        return len(self.verify_reject_log)

    def keys(self) -> List[str]:
        """Every artifact key currently on disk, sorted (deterministic
        iteration for replay-stable consumers)."""
        return sorted(
            p.name[: -len(_ARTIFACT_SUFFIX)]
            for p in self.artifacts_dir.glob(f"*{_ARTIFACT_SUFFIX}")
        )

    def contains(self, key: str) -> bool:
        return self._artifact_path(key).exists()

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------- executables
    def put(self, exe: Executable) -> str:
        """File *exe* under its content hash; returns the key. Writing
        is atomic and idempotent — re-putting an identical artifact
        rewrites the same bytes at the same path."""
        key = exe.content_hash()
        self._atomic_write(self._artifact_path(key), exe.save())
        return key

    def get(
        self, key: str, expected_signature: Optional[str] = None
    ) -> Optional[Executable]:
        """Load the artifact filed under *key*, or ``None``.

        ``None`` covers both a plain miss and every flavor of bad blob —
        truncated file, stale serialization version, content-hash
        mismatch, or (when *expected_signature* is given) an artifact
        compiled from a different module. Bad blobs are recorded in
        :attr:`reject_log`; they are never raised to the caller, whose
        correct response is always the same: compile fresh.
        """
        path = self._artifact_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None  # plain miss: nothing was ever stored here
        except OSError as err:
            # The file exists but cannot be read (permissions, I/O error
            # on a degraded volume): that is a failed load, not a miss —
            # it must show up in the reject log, or a broken volume
            # would silently stop restarts being warm.
            self.reject_log.append((key, f"unreadable artifact: {err}"))
            return None
        try:
            exe = Executable.load(blob, expected_signature=expected_signature)
        except SerializationError as err:
            self.reject_log.append((key, str(err)))
            return None
        # The blob deserialized, but is it the artifact this key names?
        # A file renamed/copied to the wrong path would otherwise serve
        # a different (module, platform, shape, batch) variant.
        if exe.content_hash() != key:
            self.reject_log.append(
                (key, f"artifact hashes to {exe.content_hash()}, filed as {key}")
            )
            return None
        if self.verify:
            # The blob is authentic, but is the bytecode sound? A buggy
            # writer (or a hand-edited blob with a recomputed hash) can
            # produce a well-formed *container* around racy or
            # ill-formed *contents*; verification is the last gate
            # before anything executes it.
            from repro.analysis import verify_executable

            errors = [
                f
                for f in verify_executable(exe)
                if f.severity == "error"
            ]
            if errors:
                reason = (
                    f"failed static verification "
                    f"({len(errors)} finding(s)): {errors[0]}"
                )
                self.reject_log.append((key, reason))
                self.verify_reject_log.append((key, reason))
                return None
        return exe

    # ----------------------------------------------------------------- prefixes
    def prefix_keys(self) -> List[str]:
        """Every specialization-prefix key currently on disk, sorted."""
        return sorted(
            p.name[: -len(_PREFIX_SUFFIX)]
            for p in self.artifacts_dir.glob(f"*{_PREFIX_SUFFIX}")
        )

    def contains_prefix(self, key: str) -> bool:
        return self._prefix_path(key).exists()

    def put_prefix(self, prefix) -> str:
        """File a :class:`repro.nimble.SpecializationPrefix` under its
        store key; returns the key. Atomic and idempotent, like
        :meth:`put`."""
        key = prefix.store_key()
        self._atomic_write(self._prefix_path(key), prefix.save())
        return key

    def get_prefix(self, key: str, expected_signature: Optional[str] = None):
        """Load the specialization prefix filed under *key*, or ``None``.

        Same contract as :meth:`get`: a plain miss returns ``None``
        silently; every flavor of bad blob (truncated, stale version,
        digest mismatch, wrong source module, key/path mismatch) also
        returns ``None`` but lands in :attr:`reject_log`. The caller's
        fallback is always the same: rebuild the prefix from source.
        """
        # Imported lazily: repro.nimble imports this module at top level,
        # so the reverse import must wait until call time.
        from repro.nimble import SpecializationPrefix, prefix_store_key

        path = self._prefix_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None  # plain miss: nothing was ever stored here
        except OSError as err:
            self.reject_log.append((key, f"unreadable prefix: {err}"))
            return None
        try:
            prefix = SpecializationPrefix.load(
                blob, expected_signature=expected_signature
            )
        except SerializationError as err:
            self.reject_log.append((key, str(err)))
            return None
        # The blob deserialized, but is it the prefix this key names? A
        # file renamed to the wrong path would otherwise hand back a
        # prefix for a different (module, platform).
        recomputed = prefix_store_key(prefix.source_signature, prefix.platform_name)
        if recomputed != key:
            self.reject_log.append(
                (key, f"prefix keys to {recomputed}, filed as {key}")
            )
            return None
        return prefix

    # ----------------------------------------------------------------- profiles
    def profile_keys(self) -> List[str]:
        """Every shape-profile key currently on disk, sorted."""
        return sorted(
            p.name[: -len(_PROFILE_SUFFIX)]
            for p in self.artifacts_dir.glob(f"*{_PROFILE_SUFFIX}")
        )

    def contains_profile(self, key: str) -> bool:
        return self._profile_path(key).exists()

    def put_profile(self, profile) -> str:
        """File a :class:`repro.serve.profile.ShapeProfile` under its
        store key; returns the key. Atomic and idempotent, like
        :meth:`put`. One profile per (module, platform, format) — a
        later simulation's snapshot overwrites the earlier one."""
        key = profile.store_key()
        self._atomic_write(self._profile_path(key), profile.save())
        return key

    def get_profile(self, key: str, expected_signature: Optional[str] = None):
        """Load the shape profile filed under *key*, or ``None``.

        Same contract as :meth:`get`: a plain miss returns ``None``
        silently; every flavor of bad blob (truncated, stale version,
        digest mismatch, wrong source module, key/path mismatch) also
        returns ``None`` but lands in :attr:`reject_log`. The caller's
        fallback is always the same: serve cold, profile-less.
        """
        # Imported lazily for symmetry with get_prefix (and to keep the
        # store importable without pulling in the serving layer).
        from repro.serve.profile import ShapeProfile, profile_store_key

        path = self._profile_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None  # plain miss: nothing was ever stored here
        except OSError as err:
            self.reject_log.append((key, f"unreadable profile: {err}"))
            return None
        try:
            profile = ShapeProfile.load(
                blob, expected_signature=expected_signature
            )
        except SerializationError as err:
            self.reject_log.append((key, str(err)))
            return None
        # The blob deserialized, but is it the profile this key names? A
        # file renamed to the wrong path would otherwise pre-arm shapes
        # recorded for a different (module, platform).
        recomputed = profile_store_key(
            profile.source_signature, profile.platform_name
        )
        if recomputed != key:
            self.reject_log.append(
                (key, f"profile keys to {recomputed}, filed as {key}")
            )
            return None
        return profile

    # ------------------------------------------------------------ kernel cache
    @property
    def kernel_cache_path(self) -> Path:
        return self.root / "kernels.kc"

    def save_kernel_cache(self, cache: KernelCache) -> None:
        """Persist the kernel cache (entries for every platform live in
        one blob — the cache keys already carry the platform name)."""
        self._atomic_write(self.kernel_cache_path, cache.export_entries())

    def load_kernel_cache(self, cache: KernelCache) -> int:
        """Merge the persisted kernel cache into *cache*; returns how
        many entries were added (0 on a missing or rejected blob — the
        caller's build simply compiles its kernels fresh)."""
        try:
            blob = self.kernel_cache_path.read_bytes()
        except FileNotFoundError:
            return 0  # no cache was ever persisted: a plain miss
        except OSError as err:
            # Existing but unreadable: a failed load, visible like any
            # rejected executable blob.
            self.reject_log.append(
                ("kernels.kc", f"unreadable kernel cache: {err}")
            )
            return 0
        try:
            return cache.import_entries(blob)
        except SerializationError as err:
            self.reject_log.append(("kernels.kc", str(err)))
            return 0

    # ------------------------------------------------------------------- blobs
    # Kind names shared with repro.fleet.FleetStoreView and StoreGC:
    # "exe" (.nmbl), "prefix" (.nmblp), "profile" (.nmblprof).
    def blob_path(self, kind: str, key: str) -> Path:
        """The on-disk path of a blob by (kind, key) — the addressing the
        GC and the fleet's store view use."""
        if kind == "exe":
            return self._artifact_path(key)
        if kind == "prefix":
            return self._prefix_path(key)
        if kind == "profile":
            return self._profile_path(key)
        raise ValueError(f"unknown blob kind {kind!r}")

    def remove(self, kind: str, key: str) -> bool:
        """Unlink one blob; returns whether a file was actually removed.
        A miss is not an error — the GC prunes from a *model* of the
        store, and the disk is allowed to be behind the model (a blob
        modeled from a previous simulation's write may not exist under
        this directory's current history)."""
        try:
            self.blob_path(kind, key).unlink()
            return True
        except FileNotFoundError:
            return False

    def malformed_names(self) -> List[str]:
        """File names under ``artifacts/`` that are not well-formed blobs
        (no known suffix, or an empty key), sorted. The GC *counts*
        these and leaves them alone — an unrecognized file is evidence
        of a foreign writer or corruption, and deleting evidence is the
        one thing a collector must never do. In-flight atomic-write
        temporaries (``.tmp-*``) are not counted; they are a healthy
        store's transient state, not rot."""
        bad: List[str] = []
        for p in self.artifacts_dir.iterdir():
            if not p.is_file() or p.name.startswith(".tmp-"):
                continue
            for suffix in (_PROFILE_SUFFIX, _PREFIX_SUFFIX, _ARTIFACT_SUFFIX):
                if p.name.endswith(suffix):
                    if len(p.name) > len(suffix):
                        break
                    bad.append(p.name)  # a bare suffix with no key
                    break
            else:
                bad.append(p.name)
        return sorted(bad)

    # -------------------------------------------------------------- internals
    def _artifact_path(self, key: str) -> Path:
        return self.artifacts_dir / f"{key}{_ARTIFACT_SUFFIX}"

    def _prefix_path(self, key: str) -> Path:
        return self.artifacts_dir / f"{key}{_PREFIX_SUFFIX}"

    def _profile_path(self, key: str) -> Path:
        return self.artifacts_dir / f"{key}{_PROFILE_SUFFIX}"

    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as out:
                out.write(data)
            os.replace(tmp, str(path))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
