"""Store compaction: age/LRU pruning of unreferenced blobs.

A long-lived artifact store accretes: every hot shape ever compiled
leaves a ``.nmbl``, every staged module a ``.nmblp``, every simulation
end a ``.nmblprof``. :class:`StoreGC` reclaims the cold tail under two
policies — **age** (a blob untouched for ``max_age_us`` of virtual time)
and **LRU budget** (keep at most ``max_blobs``, evicting
least-recently-used first) — with two absolute guards:

- **refcount**: a blob any live replica snapshot still references
  (resident or in-flight variants, the staged prefix, the shape
  profile — :meth:`repro.serve.SpecializationManager.referenced_store_keys`)
  is never pruned, no matter how old;
- **in-flight restores**: a blob some replica is deserializing *right
  now* is never pruned (this is implied by the refcount guard — an
  in-flight restore is a pending job — but callers pass the set
  explicitly so the invariant is enforced even if the reference
  bookkeeping ever narrows).

Determinism is the design constraint that shapes everything else: GC
decisions feed replay-identity assertions (``docs/fleet.md``), but the
*disk* contents at a given virtual time differ between replays — a
second ``simulate()`` starts with whatever the first one wrote. So the
collector decides from the :class:`repro.fleet.FleetStoreView` **model**
(frozen initial inventory + this simulation's recorded puts/uses/prunes)
and only then mirrors each prune to disk with a best-effort unlink. The
examined/pruned/kept counts in a :class:`GCReport` are therefore pure
functions of the trace.

Malformed file names in the store directory are inventoried
(skip-and-count, see :meth:`ArtifactStore.malformed_names`) but never
deleted: an unrecognized file is evidence, not garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.store.artifacts import ArtifactStore

StoreEntry = Tuple[str, str]  # (kind, key), kinds "exe"/"prefix"/"profile"


@dataclass
class GCReport:
    """One collection's decisions (all derived from the model, so two
    replays of the same trace produce equal reports)."""

    at_us: float = 0.0
    examined: int = 0
    pruned: List[StoreEntry] = field(default_factory=list)
    kept_referenced: int = 0
    kept_in_flight: int = 0
    kept_fresh: int = 0
    # Unrecognized file names found on disk — counted, never touched.
    malformed: int = 0
    # Model-pruned entries whose disk file did not exist (the disk was
    # behind the model; the model prune still happened).
    missing_on_disk: int = 0

    @property
    def pruned_count(self) -> int:
        return len(self.pruned)

    def counters(self) -> dict:
        """The replay-comparable summary (used by FleetReport equality)."""
        return {
            "at_us": self.at_us,
            "examined": self.examined,
            "pruned": tuple(self.pruned),
            "kept_referenced": self.kept_referenced,
            "kept_in_flight": self.kept_in_flight,
            "kept_fresh": self.kept_fresh,
            "malformed": self.malformed,
        }


class StoreGC:
    """Age/LRU collector over one :class:`ArtifactStore`, deciding from
    a fleet store view (model) and mirroring prunes to disk.

    ``max_age_us`` prunes entries whose last modeled use is more than
    that far behind ``now_us`` — including never-used initial inventory,
    which has no use anchor and counts as infinitely old. ``max_blobs``
    then prunes least-recently-used survivors until the model holds at
    most that many entries. Either policy may be ``None`` (disabled);
    with both ``None`` the collector only inventories malformed names.
    """

    def __init__(
        self,
        store: ArtifactStore,
        view,
        max_age_us: Optional[float] = None,
        max_blobs: Optional[int] = None,
    ) -> None:
        if max_age_us is not None and max_age_us < 0:
            raise ValueError(f"max_age_us must be >= 0, got {max_age_us}")
        if max_blobs is not None and max_blobs < 0:
            raise ValueError(f"max_blobs must be >= 0, got {max_blobs}")
        self.store = store
        self.view = view
        self.max_age_us = max_age_us
        self.max_blobs = max_blobs

    def collect(
        self,
        now_us: float,
        referenced: Set[StoreEntry] = frozenset(),
        in_flight: Set[StoreEntry] = frozenset(),
    ) -> GCReport:
        """Run one collection at virtual time *now_us*.

        *referenced* is the union of every live replica's
        ``referenced_store_keys()`` — the refcount guard. *in_flight* is
        the union of their ``restoring_store_keys(now_us)`` — restores a
        lane is deserializing right now (a subset of *referenced*;
        accepted separately so the in-flight invariant never depends on
        the reference set staying a superset).
        """
        report = GCReport(
            at_us=now_us, malformed=len(self.store.malformed_names())
        )
        inventory = self.view.inventory()
        report.examined = len(inventory)
        protected = set(referenced) | set(in_flight)

        def guard(entry: StoreEntry) -> bool:
            """True when *entry* must be kept; counts the reason."""
            if entry in in_flight:
                report.kept_in_flight += 1
                return True
            if entry in referenced:
                report.kept_referenced += 1
                return True
            return False

        def age_of(entry: StoreEntry) -> float:
            last = self.view.last_use_us(entry[0], entry[1])
            return float("inf") if last is None else now_us - last

        live: List[StoreEntry] = []
        for entry in inventory:
            if self.max_age_us is not None and age_of(entry) > self.max_age_us:
                if not guard(entry):
                    self._prune(entry, now_us, report)
                    continue
            else:
                report.kept_fresh += 1
            live.append(entry)
        if self.max_blobs is not None and len(live) > self.max_blobs:
            # LRU order: never-used (ageless) entries first, then oldest
            # last use; key ties broken by the entry itself so the order
            # is total and replay-stable.
            by_lru = sorted(
                live, key=lambda e: (-age_of(e), e)
            )
            for entry in by_lru:
                if len(live) <= self.max_blobs:
                    break
                if entry in protected:
                    # guard() already counted referenced/in-flight keeps
                    # during the age pass only when the age policy fired;
                    # here the budget policy is the one firing.
                    guard(entry)
                    continue
                self._prune(entry, now_us, report)
                live.remove(entry)
        return report

    def _prune(self, entry: StoreEntry, now_us: float, report: GCReport) -> None:
        """Model prune + best-effort disk unlink (the model is truth)."""
        kind, key = entry
        self.view.record_prune(kind, key, now_us)
        if not self.store.remove(kind, key):
            report.missing_on_disk += 1
        report.pruned.append(entry)
