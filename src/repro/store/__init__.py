"""Persistent on-disk store for compiled artifacts.

Nimble's core bet is that compilation cost is paid once and amortized
over many inferences — but a process that throws its specialized
executables away on exit re-pays the full compile charge for every hot
shape after a restart. ``repro.store`` closes that gap: specialized
:class:`~repro.vm.executable.Executable` blobs and the shared
:class:`~repro.codegen.kernels.KernelCache` persist to a versioned
directory, keyed by a content hash of (module fingerprint, platform,
shape binding, batch marker, serialization version), and a restarted
server restores them at a small modeled deserialize cost instead of
recompiling (``ServeConfig(artifact_dir=...)``;
``harness.restart_study`` measures the effect).

Corrupt, truncated, or stale blobs are *skipped and counted* — the
caller falls back to compiling — never crashed on and never silently
loaded: every artifact re-verifies its embedded content hash and source
signature at load time.

:class:`StoreGC` compacts a long-lived store: age/LRU pruning of blobs
no live replica references (``repro.fleet`` supplies the reference and
in-flight-restore sets), deciding from the fleet's store *model* so the
decisions replay bit-identically (see ``docs/fleet.md``).
"""

from repro.store.artifacts import STORE_FORMAT, ArtifactStore
from repro.store.gc import GCReport, StoreGC

__all__ = ["ArtifactStore", "STORE_FORMAT", "GCReport", "StoreGC"]
