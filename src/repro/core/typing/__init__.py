"""The dynamic type system: inference, unification, sub-shaping (§4.1)."""

from repro.core.typing.unify import check_subtype, join_types, unify_types
from repro.core.typing.infer import InferType, infer_expr_type, infer_types
from repro.core.typing.subshape import any_dim_groups, shared_any_dims
from repro.core.typing.bind import (
    bind_any_dims,
    collect_any_tokens,
    collect_shape_bindings,
    translate_binding,
)

__all__ = [
    "check_subtype",
    "join_types",
    "unify_types",
    "InferType",
    "infer_expr_type",
    "infer_types",
    "any_dim_groups",
    "shared_any_dims",
    "bind_any_dims",
    "collect_any_tokens",
    "collect_shape_bindings",
    "translate_binding",
]
