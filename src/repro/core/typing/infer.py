"""Type inference with ``Any`` dims (§4.1).

Walks every function of a module, assigning ``checked_type`` to every
expression. Operator calls dispatch to the registered type relations,
which propagate ``Any`` per the paper's rules; ``If``/``Match`` branches
are merged with the *join* (relaxing conflicting dims to ``Any``);
annotations act as interfaces checked by sub-shaping.

Recursive global functions (dynamic control flow compiles to recursion)
must carry parameter and return annotations — the inferencer uses the
declared signature while the body is in progress, exactly as Relay does.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import TypeInferenceError
from repro.ir.adt import substitute_type
from repro.ir.expr import (
    Call,
    Constant,
    Constructor,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    Pattern,
    PatternConstructor,
    PatternVar,
    PatternWildcard,
    Tuple,
    TupleGetItem,
    Var,
)
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.types import (
    FuncType,
    TensorType,
    TupleType,
    Type,
    TypeCall,
    TypeVar,
    has_any_dim,
)
from repro.core.typing.unify import check_subtype, join_types, unify_types
from repro.ops.registry import get_op_def


class _Inferencer:
    def __init__(self, mod: IRModule) -> None:
        self.mod = mod
        self._func_types: Dict[GlobalVar, FuncType] = {}
        self._in_progress: set = set()
        self._memo: Dict[int, Type] = {}

    # -- module-level driver ------------------------------------------------
    def run(self) -> None:
        for gv in list(self.mod.functions):
            self.global_func_type(gv)

    def global_func_type(self, gv: GlobalVar) -> FuncType:
        if gv in self._func_types:
            return self._func_types[gv]
        func = self.mod.functions.get(gv)
        if func is None:
            raise TypeInferenceError(f"reference to undefined function @{gv.name_hint}")
        if gv in self._in_progress:
            # Recursive call: rely on the declared signature.
            arg_types = []
            for p in func.params:
                if p.type_annotation is None:
                    raise TypeInferenceError(
                        f"recursive function @{gv.name_hint} needs annotated parameters"
                    )
                arg_types.append(p.type_annotation)
            if func.ret_type is None:
                raise TypeInferenceError(
                    f"recursive function @{gv.name_hint} needs a declared return type"
                )
            return FuncType(arg_types, func.ret_type)
        self._in_progress.add(gv)
        try:
            fty = self.infer_function(func)
        finally:
            self._in_progress.discard(gv)
        self._func_types[gv] = fty
        gv.checked_type = fty
        return fty

    # -- expression inference ---------------------------------------------------
    def infer(self, expr: Expr) -> Type:
        key = id(expr)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        ty = self._infer(expr)
        expr.checked_type = ty
        self._memo[key] = ty
        return ty

    def _infer(self, expr: Expr) -> Type:
        if isinstance(expr, Var):
            if expr.checked_type is not None:
                return expr.checked_type
            if expr.type_annotation is not None:
                return expr.type_annotation
            raise TypeInferenceError(f"unbound/unannotated variable %{expr.name_hint}")
        if isinstance(expr, GlobalVar):
            return self.global_func_type(expr)
        if isinstance(expr, Constant):
            return TensorType(expr.value.shape, expr.value.dtype)
        if isinstance(expr, Tuple):
            return TupleType([self.infer(f) for f in expr.fields])
        if isinstance(expr, TupleGetItem):
            tup_ty = self.infer(expr.tuple_value)
            if not isinstance(tup_ty, TupleType):
                raise TypeInferenceError(f"indexing into non-tuple type {tup_ty!r}")
            if not 0 <= expr.index < len(tup_ty.fields):
                raise TypeInferenceError(
                    f"tuple index {expr.index} out of range for {tup_ty!r}"
                )
            return tup_ty.fields[expr.index]
        if isinstance(expr, Let):
            return self.infer_let_chain(expr)
        if isinstance(expr, If):
            cond_ty = self.infer(expr.cond)
            if not isinstance(cond_ty, TensorType) or cond_ty.ndim != 0:
                raise TypeInferenceError(f"if condition must be a scalar, got {cond_ty!r}")
            true_ty = self.infer(expr.true_branch)
            false_ty = self.infer(expr.false_branch)
            return join_types(true_ty, false_ty, "if branches")
        if isinstance(expr, Function):
            return self.infer_function(expr)
        if isinstance(expr, Call):
            return self.infer_call(expr)
        if isinstance(expr, Match):
            return self.infer_match(expr)
        if isinstance(expr, Constructor):
            # A bare constructor reference (not applied); type as a function.
            return FuncType(list(expr.inputs), TypeCall(expr.belongs_to, []))
        if isinstance(expr, Op):
            raise TypeInferenceError(f"bare operator {expr.name} outside a call")
        raise TypeInferenceError(f"cannot infer type of {type(expr).__name__}")

    def infer_let_chain(self, let: Let) -> Type:
        chain: List[Let] = []
        node: Expr = let
        while isinstance(node, Let):
            value_ty = self.infer(node.value)
            var = node.var
            if var.type_annotation is not None:
                check_subtype(value_ty, var.type_annotation, f"let %{var.name_hint}")
                # The annotation is the declared interface, but when it
                # still carries Any dims and the value's inferred type is
                # fully static, the value type is the strictly more
                # precise (and sub-shaping-compatible) of the two. Keeping
                # it is what lets residual inference after shape binding
                # staticize a chain whose annotations were written against
                # the dynamic module — an Any-annotated let would
                # otherwise pin its binding dynamic forever and drag shape
                # functions back into a fully bound module.
                if has_any_dim(var.type_annotation) and not has_any_dim(value_ty):
                    var.checked_type = value_ty
                else:
                    var.checked_type = var.type_annotation
            else:
                var.checked_type = value_ty
            self._memo[id(var)] = var.checked_type
            chain.append(node)
            node = node.body
        body_ty = self.infer(node)
        for item in reversed(chain):
            item.checked_type = body_ty
            self._memo[id(item)] = body_ty
        return body_ty

    def infer_function(self, func: Function) -> FuncType:
        arg_types: List[Type] = []
        for p in func.params:
            if p.type_annotation is None:
                raise TypeInferenceError(
                    f"function parameter %{p.name_hint} needs a type annotation"
                )
            p.checked_type = p.type_annotation
            self._memo[id(p)] = p.type_annotation
            arg_types.append(p.type_annotation)
        body_ty = self.infer(func.body)
        if func.ret_type is not None:
            check_subtype(body_ty, func.ret_type, "function return")
            ret = func.ret_type
        else:
            ret = body_ty
        fty = FuncType(arg_types, ret)
        func.checked_type = fty
        self._memo[id(func)] = fty
        return fty

    def infer_call(self, call: Call) -> Type:
        if isinstance(call.op, Op):
            op_def = get_op_def(call.op.name)
            arg_types = [self.infer(a) for a in call.args]
            return op_def.type_rel(arg_types, call.attrs)
        if isinstance(call.op, Constructor):
            return self.infer_constructor_call(call)
        # Global function, local closure, or inline function literal.
        callee_ty = self.infer(call.op)
        if not isinstance(callee_ty, FuncType):
            raise TypeInferenceError(f"calling non-function of type {callee_ty!r}")
        if len(call.args) != len(callee_ty.arg_types):
            raise TypeInferenceError(
                f"call arity mismatch: {len(call.args)} args for {callee_ty!r}"
            )
        for arg, expected in zip(call.args, callee_ty.arg_types):
            actual = self.infer(arg)
            check_subtype(actual, expected, "call argument")
        return callee_ty.ret_type

    def infer_constructor_call(self, call: Call) -> Type:
        ctor: Constructor = call.op  # type: ignore[assignment]
        data = self.mod.type_data.get(ctor.belongs_to)
        if data is None:
            raise TypeInferenceError(f"constructor {ctor.name_hint} of unknown ADT")
        if len(call.args) != len(ctor.inputs):
            raise TypeInferenceError(
                f"{ctor.name_hint} expects {len(ctor.inputs)} args, got {len(call.args)}"
            )
        solution: Dict[TypeVar, Type] = {}
        for arg, spec in zip(call.args, ctor.inputs):
            actual = self.infer(arg)
            self._solve(spec, actual, solution)
        type_args = []
        for tv in data.type_vars:
            if tv not in solution:
                raise TypeInferenceError(
                    f"cannot infer type argument {tv.name} of {ctor.belongs_to.name}"
                    f" from constructor {ctor.name_hint}"
                )
            type_args.append(solution[tv])
        return TypeCall(ctor.belongs_to, type_args)

    def _solve(self, spec: Type, actual: Type, solution: Dict[TypeVar, Type]) -> None:
        """Match *actual* against *spec*, binding TypeVars."""
        if isinstance(spec, TypeVar):
            if spec in solution:
                solution[spec] = unify_types(solution[spec], actual, "type argument")
            else:
                solution[spec] = actual
            return
        if isinstance(spec, TypeCall) and isinstance(actual, TypeCall):
            if spec.func is not actual.func or len(spec.args) != len(actual.args):
                raise TypeInferenceError(f"ADT mismatch: {spec!r} vs {actual!r}")
            for s, a in zip(spec.args, actual.args):
                self._solve(s, a, solution)
            return
        if isinstance(spec, TupleType) and isinstance(actual, TupleType):
            if len(spec.fields) != len(actual.fields):
                raise TypeInferenceError("tuple arity mismatch in constructor")
            for s, a in zip(spec.fields, actual.fields):
                self._solve(s, a, solution)
            return
        # Concrete spec: the argument must be a sub-shape of it.
        check_subtype(actual, spec, "constructor argument")

    def infer_match(self, match: Match) -> Type:
        data_ty = self.infer(match.data)
        if not isinstance(data_ty, TypeCall):
            raise TypeInferenceError(f"match on non-ADT type {data_ty!r}")
        data = self.mod.type_data.get(data_ty.func)
        if data is None:
            raise TypeInferenceError(f"match on undefined ADT {data_ty.func.name}")
        mapping = dict(zip(data.type_vars, data_ty.args))
        result: Optional[Type] = None
        for clause in match.clauses:
            self._bind_pattern(clause.pattern, data_ty, mapping)
            rhs_ty = self.infer(clause.rhs)
            result = rhs_ty if result is None else join_types(result, rhs_ty, "match clauses")
        if result is None:
            raise TypeInferenceError("match with zero clauses")
        return result

    def _bind_pattern(self, pattern: Pattern, ty: Type, mapping: Dict) -> None:
        if isinstance(pattern, PatternWildcard):
            return
        if isinstance(pattern, PatternVar):
            pattern.var.checked_type = ty
            self._memo[id(pattern.var)] = ty
            return
        if isinstance(pattern, PatternConstructor):
            ctor = pattern.constructor
            if not isinstance(ty, TypeCall) or ty.func is not ctor.belongs_to:
                raise TypeInferenceError(
                    f"pattern {ctor.name_hint} does not match scrutinee type {ty!r}"
                )
            data = self.mod.type_data[ctor.belongs_to]
            local_map = dict(zip(data.type_vars, ty.args))
            if len(pattern.patterns) != len(ctor.inputs):
                raise TypeInferenceError(
                    f"pattern {ctor.name_hint} arity mismatch"
                )
            for sub, spec in zip(pattern.patterns, ctor.inputs):
                self._bind_pattern(sub, substitute_type(spec, local_map), local_map)
            return
        raise TypeInferenceError(f"unknown pattern {pattern!r}")


def infer_types(mod: IRModule) -> IRModule:
    """Run type inference over every function in *mod* (in place: fills
    ``checked_type`` slots) and return the module."""
    _Inferencer(mod).run()
    return mod


def infer_expr_type(expr: Expr, mod: Optional[IRModule] = None) -> Type:
    """Infer the type of a standalone expression (testing convenience)."""
    inf = _Inferencer(mod or IRModule())
    return inf.infer(expr)


class InferType:
    """Pass-object wrapper so the pass manager can schedule inference."""

    name = "InferType"

    def __call__(self, mod: IRModule) -> IRModule:
        return infer_types(mod)
