"""Binding ``Any`` dimensions to concrete values (shape specialization).

The sub-shaping analysis (§4.1) gives every ``Any`` an identity token;
specializing a module to one concrete input shape is then a pure *type*
substitution: replace every ``Any`` carrying a bound token with its
integer value, everywhere it occurs. Re-running type inference over the
substituted module propagates the now-static dims through every operator,
so downstream passes (manifest allocation, memory planning) see static
extents and emit none of the dynamic-shape machinery.

Two helpers live here:

* :func:`collect_shape_bindings` — walk a parameter annotation against a
  concrete shape spec, producing the ``{token: value}`` binding (and
  validating rank/static-dim agreement);
* :func:`bind_any_dims` — apply a binding to a type, recursively.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import TypeInferenceError
from repro.ir.types import Any, FuncType, TensorType, TupleType, Type, TypeCall

Binding = Dict[int, int]


def collect_shape_bindings(
    ty: Type,
    shape_spec,
    binding: Optional[Binding] = None,
    what: str = "specialization",
) -> Binding:
    """Match *shape_spec* against annotation *ty*, binding ``Any`` tokens.

    ``shape_spec`` mirrors the type structure: a sequence of ints for a
    :class:`TensorType`, a sequence of per-field specs for a
    :class:`TupleType`, or ``None`` to leave that subtree dynamic. Static
    dims in the annotation must agree with the spec; a token bound twice
    must agree both times.
    """
    binding = binding if binding is not None else {}
    if shape_spec is None:
        return binding
    if isinstance(ty, TensorType):
        shape = tuple(int(d) for d in shape_spec)
        if len(shape) != ty.ndim:
            raise TypeInferenceError(
                f"{what}: shape {shape} has rank {len(shape)} but the "
                f"annotation {ty!r} has rank {ty.ndim}"
            )
        for dim, value in zip(ty.shape, shape):
            if value < 0:
                raise TypeInferenceError(f"{what}: negative dimension {value}")
            if isinstance(dim, Any):
                bound = binding.get(dim.token)
                if bound is not None and bound != value:
                    raise TypeInferenceError(
                        f"{what}: Any token bound to both {bound} and {value}"
                    )
                binding[dim.token] = value
            elif dim != value:
                raise TypeInferenceError(
                    f"{what}: static dim {dim} of {ty!r} cannot be "
                    f"specialized to {value}"
                )
        return binding
    if isinstance(ty, TupleType):
        fields = list(shape_spec)
        if len(fields) != len(ty.fields):
            raise TypeInferenceError(
                f"{what}: spec has {len(fields)} fields for tuple type {ty!r}"
            )
        for field_ty, field_spec in zip(ty.fields, fields):
            collect_shape_bindings(field_ty, field_spec, binding, what)
        return binding
    raise TypeInferenceError(f"{what}: cannot bind shapes into {ty!r}")


def batch_type(ty: Type, batch: int, what: str = "batch specialization") -> Type:
    """Stack a (fully static) type's leading dimension *batch* times.

    This is the leading-dim binding behind batch-granularity
    specialization: the batched executable's value for a tensor of member
    shape ``(d0, rest...)`` is the axis-0 concatenation of the ``batch``
    member values, of shape ``(batch * d0, rest...)``. Rank-0 tensors are
    shared across members (all members of a batch-specialized bucket have
    the same exact shape, so scalars — loop counters, shape reads — are
    member-independent) and pass through unchanged.
    """
    if batch < 1:
        raise TypeInferenceError(f"{what}: batch must be >= 1, got {batch}")
    if isinstance(ty, TensorType):
        if ty.ndim == 0:
            return ty
        lead = ty.shape[0]
        if isinstance(lead, Any):
            raise TypeInferenceError(
                f"{what}: cannot stack dynamic leading dim of {ty!r}; "
                f"specialize the shape first"
            )
        return TensorType((batch * int(lead),) + tuple(ty.shape[1:]), ty.dtype)
    if isinstance(ty, TupleType):
        return TupleType([batch_type(f, batch, what) for f in ty.fields])
    raise TypeInferenceError(f"{what}: cannot stack a batch dim into {ty!r}")


def bind_any_dims(ty: Type, binding: Binding) -> Type:
    """Replace every ``Any`` whose token is in *binding* with its value.

    Unbound tokens survive unchanged (they stay dynamic); the input type
    is returned as-is when nothing inside it is bound.
    """
    if not binding:
        return ty
    if isinstance(ty, TensorType):
        changed = False
        dims = []
        for dim in ty.shape:
            if isinstance(dim, Any) and dim.token in binding:
                dims.append(binding[dim.token])
                changed = True
            else:
                dims.append(dim)
        return TensorType(dims, ty.dtype) if changed else ty
    if isinstance(ty, TupleType):
        fields = [bind_any_dims(f, binding) for f in ty.fields]
        if all(n is o for n, o in zip(fields, ty.fields)):
            return ty
        return TupleType(fields)
    if isinstance(ty, FuncType):
        args = [bind_any_dims(a, binding) for a in ty.arg_types]
        ret = bind_any_dims(ty.ret_type, binding)
        if ret is ty.ret_type and all(n is o for n, o in zip(args, ty.arg_types)):
            return ty
        return FuncType(args, ret)
    if isinstance(ty, TypeCall):
        args = [bind_any_dims(a, binding) for a in ty.args]
        if all(n is o for n, o in zip(args, ty.args)):
            return ty
        return TypeCall(ty.func, args)
    return ty
