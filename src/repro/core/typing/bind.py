"""Binding ``Any`` dimensions to concrete values (shape specialization).

The sub-shaping analysis (§4.1) gives every ``Any`` an identity token;
specializing a module to one concrete input shape is then a pure *type*
substitution: replace every ``Any`` carrying a bound token with its
integer value, everywhere it occurs. Re-running type inference over the
substituted module propagates the now-static dims through every operator,
so downstream passes (manifest allocation, memory planning) see static
extents and emit none of the dynamic-shape machinery.

Helpers living here:

* :func:`collect_shape_bindings` — walk a parameter annotation against a
  concrete shape spec, producing the ``{token: value}`` binding (and
  validating rank/static-dim agreement);
* :func:`bind_any_dims` — apply a binding to a type, recursively;
* :func:`collect_any_tokens` / :func:`translate_binding` — carry a
  binding between two structurally identical functions whose ``Any``
  tokens differ (a staged-compilation prefix restored from the artifact
  store was pickled in another process, so its token integers come from
  that process's counter).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import TypeInferenceError
from repro.ir.types import Any, FuncType, TensorType, TupleType, Type, TypeCall

Binding = Dict[int, int]


def collect_shape_bindings(
    ty: Type,
    shape_spec,
    binding: Optional[Binding] = None,
    what: str = "specialization",
) -> Binding:
    """Match *shape_spec* against annotation *ty*, binding ``Any`` tokens.

    ``shape_spec`` mirrors the type structure: a sequence of dims for a
    :class:`TensorType`, a sequence of per-field specs for a
    :class:`TupleType`, or ``None`` to leave that subtree dynamic. A
    tensor dim may itself be ``None`` — a *partial* spec: that dim stays
    unbound (dynamic), so one specialized variant can cover a family of
    exact shapes (the serving layer guards the bound dims at entry).
    Static dims in the annotation must agree with the spec; a token
    bound twice must agree both times.
    """
    binding = binding if binding is not None else {}
    if shape_spec is None:
        return binding
    if isinstance(ty, TensorType):
        shape = tuple(None if d is None else int(d) for d in shape_spec)
        if len(shape) != ty.ndim:
            raise TypeInferenceError(
                f"{what}: shape {shape} has rank {len(shape)} but the "
                f"annotation {ty!r} has rank {ty.ndim}"
            )
        for dim, value in zip(ty.shape, shape):
            if value is None:
                continue  # partial spec: this dim stays dynamic
            if value < 0:
                raise TypeInferenceError(f"{what}: negative dimension {value}")
            if isinstance(dim, Any):
                bound = binding.get(dim.token)
                if bound is not None and bound != value:
                    raise TypeInferenceError(
                        f"{what}: Any token bound to both {bound} and {value}"
                    )
                binding[dim.token] = value
            elif dim != value:
                raise TypeInferenceError(
                    f"{what}: static dim {dim} of {ty!r} cannot be "
                    f"specialized to {value}"
                )
        return binding
    if isinstance(ty, TupleType):
        fields = list(shape_spec)
        if len(fields) != len(ty.fields):
            raise TypeInferenceError(
                f"{what}: spec has {len(fields)} fields for tuple type {ty!r}"
            )
        for field_ty, field_spec in zip(ty.fields, fields):
            collect_shape_bindings(field_ty, field_spec, binding, what)
        return binding
    raise TypeInferenceError(f"{what}: cannot bind shapes into {ty!r}")


def batch_type(ty: Type, batch: int, what: str = "batch specialization") -> Type:
    """Stack a (fully static) type's leading dimension *batch* times.

    This is the leading-dim binding behind batch-granularity
    specialization: the batched executable's value for a tensor of member
    shape ``(d0, rest...)`` is the axis-0 concatenation of the ``batch``
    member values, of shape ``(batch * d0, rest...)``. Rank-0 tensors are
    shared across members (all members of a batch-specialized bucket have
    the same exact shape, so scalars — loop counters, shape reads — are
    member-independent) and pass through unchanged.
    """
    if batch < 1:
        raise TypeInferenceError(f"{what}: batch must be >= 1, got {batch}")
    if isinstance(ty, TensorType):
        if ty.ndim == 0:
            return ty
        lead = ty.shape[0]
        if isinstance(lead, Any):
            raise TypeInferenceError(
                f"{what}: cannot stack dynamic leading dim of {ty!r}; "
                f"specialize the shape first"
            )
        return TensorType((batch * int(lead),) + tuple(ty.shape[1:]), ty.dtype)
    if isinstance(ty, TupleType):
        return TupleType([batch_type(f, batch, what) for f in ty.fields])
    raise TypeInferenceError(f"{what}: cannot stack a batch dim into {ty!r}")


def collect_any_tokens(ty: Optional[Type], out: Optional[List[int]] = None) -> List[int]:
    """Every ``Any`` token in *ty*, in first-occurrence (depth-first)
    order, each token once. The order is structural, so two types that
    print identically yield positionally corresponding token lists even
    when the token integers themselves differ."""
    out = out if out is not None else []
    if isinstance(ty, TensorType):
        for dim in ty.shape:
            if isinstance(dim, Any) and dim.token not in out:
                out.append(dim.token)
        return out
    if isinstance(ty, TupleType):
        for field in ty.fields:
            collect_any_tokens(field, out)
        return out
    if isinstance(ty, FuncType):
        for arg in ty.arg_types:
            collect_any_tokens(arg, out)
        collect_any_tokens(ty.ret_type, out)
        return out
    if isinstance(ty, TypeCall):
        for arg in ty.args:
            collect_any_tokens(arg, out)
        return out
    return out


def translate_binding(src_func, dst_func, binding: Binding) -> Binding:
    """Re-express *binding* (token space of *src_func*'s parameter
    annotations) in the token space of the structurally identical
    *dst_func*.

    A staged-compilation prefix restored from the artifact store carries
    ``Any`` tokens allocated by the process that pickled it; a binding
    derived from the live dynamic module (the serving bucketer's token
    list) would silently bind nothing against it. Tokens correspond
    positionally — both functions' annotations are the same types,
    printed identically — so the translation is a zip of the two
    first-occurrence token orders. Rejects structural drift loudly.
    """
    src_tokens: List[int] = []
    dst_tokens: List[int] = []
    for p in src_func.params:
        collect_any_tokens(p.type_annotation, src_tokens)
    for p in dst_func.params:
        collect_any_tokens(p.type_annotation, dst_tokens)
    if len(src_tokens) != len(dst_tokens):
        raise TypeInferenceError(
            f"binding translation: source entry has {len(src_tokens)} Any "
            f"token(s) but the target entry has {len(dst_tokens)} — the "
            f"functions are not structurally identical"
        )
    mapping = dict(zip(src_tokens, dst_tokens))
    out: Binding = {}
    for token, value in binding.items():
        mapped = mapping.get(token)
        if mapped is not None:
            out[mapped] = value
    return out


def bind_any_dims(ty: Type, binding: Binding) -> Type:
    """Replace every ``Any`` whose token is in *binding* with its value.

    Unbound tokens survive unchanged (they stay dynamic); the input type
    is returned as-is when nothing inside it is bound.
    """
    if not binding:
        return ty
    if isinstance(ty, TensorType):
        changed = False
        dims = []
        for dim in ty.shape:
            if isinstance(dim, Any) and dim.token in binding:
                dims.append(binding[dim.token])
                changed = True
            else:
                dims.append(dim)
        return TensorType(dims, ty.dtype) if changed else ty
    if isinstance(ty, TupleType):
        fields = [bind_any_dims(f, binding) for f in ty.fields]
        if all(n is o for n, o in zip(fields, ty.fields)):
            return ty
        return TupleType(fields)
    if isinstance(ty, FuncType):
        args = [bind_any_dims(a, binding) for a in ty.arg_types]
        ret = bind_any_dims(ty.ret_type, binding)
        if ret is ty.ret_type and all(n is o for n, o in zip(args, ty.arg_types)):
            return ty
        return FuncType(args, ret)
    if isinstance(ty, TypeCall):
        args = [bind_any_dims(a, binding) for a in ty.args]
        if all(n is o for n, o in zip(args, ty.args)):
            return ty
        return TypeCall(ty.func, args)
    return ty
