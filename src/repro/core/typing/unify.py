"""Type unification and the sub-shaping lattice (§4.1).

Three operations, all over types possibly containing ``Any`` dims:

* :func:`unify_types` — most-specific common type; ``Any`` unifies with a
  concrete dim by *becoming* it (used when checking a value against an
  annotation: type inference sharpens ``Any`` where it can);
* :func:`join_types` — least-upper-bound in the sub-shaping order; two
  different concrete dims join to ``Any`` (used to merge ``If``/``Match``
  branch types — this is the paper's "relax typing constraints ... when
  necessary");
* :func:`check_subtype` — is a value of the first type usable where the
  second is expected? Sub-shaping: more specific shape information may
  flow into contexts requiring less specific shapes.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TypeInferenceError
from repro.ir.types import (
    Any,
    FuncType,
    StorageType,
    TensorType,
    TupleType,
    Type,
    TypeCall,
    TypeVar,
    same_dim,
)


def unify_types(a: Type, b: Type, what: str = "unification") -> Type:
    """Most specific type compatible with both; raises on conflict."""
    if a is b:
        return a
    if isinstance(a, TensorType) and isinstance(b, TensorType):
        if a.dtype != b.dtype:
            raise TypeInferenceError(f"{what}: dtype mismatch {a.dtype} vs {b.dtype}")
        if a.ndim != b.ndim:
            raise TypeInferenceError(f"{what}: rank mismatch {a!r} vs {b!r}")
        dims = []
        for da, db in zip(a.shape, b.shape):
            if isinstance(da, Any) and isinstance(db, Any):
                dims.append(da if same_dim(da, db) else da)
            elif isinstance(da, Any):
                dims.append(db)
            elif isinstance(db, Any):
                dims.append(da)
            elif da == db:
                dims.append(da)
            else:
                raise TypeInferenceError(f"{what}: shape mismatch {a!r} vs {b!r}")
        return TensorType(tuple(dims), a.dtype)
    if isinstance(a, TupleType) and isinstance(b, TupleType):
        if len(a.fields) != len(b.fields):
            raise TypeInferenceError(f"{what}: tuple arity mismatch {a!r} vs {b!r}")
        return TupleType([unify_types(x, y, what) for x, y in zip(a.fields, b.fields)])
    if isinstance(a, FuncType) and isinstance(b, FuncType):
        if len(a.arg_types) != len(b.arg_types):
            raise TypeInferenceError(f"{what}: function arity mismatch")
        args = [unify_types(x, y, what) for x, y in zip(a.arg_types, b.arg_types)]
        return FuncType(args, unify_types(a.ret_type, b.ret_type, what))
    if isinstance(a, TypeCall) and isinstance(b, TypeCall):
        if a.func is not b.func or len(a.args) != len(b.args):
            raise TypeInferenceError(f"{what}: ADT mismatch {a!r} vs {b!r}")
        return TypeCall(a.func, [unify_types(x, y, what) for x, y in zip(a.args, b.args)])
    if isinstance(a, StorageType) and isinstance(b, StorageType):
        return a
    if isinstance(a, TypeVar) or isinstance(b, TypeVar):
        # TypeVar solving happens in constructor-call inference; here a
        # raw TypeVar only unifies with itself.
        if a is b:
            return a
        raise TypeInferenceError(f"{what}: unsolved type variable {a!r} vs {b!r}")
    raise TypeInferenceError(f"{what}: incompatible types {a!r} vs {b!r}")


def join_types(a: Type, b: Type, what: str = "branch join") -> Type:
    """Least upper bound: conflicting concrete dims relax to ``Any``."""
    if a is b:
        return a
    if isinstance(a, TensorType) and isinstance(b, TensorType):
        if a.dtype != b.dtype:
            raise TypeInferenceError(f"{what}: dtype mismatch {a.dtype} vs {b.dtype}")
        if a.ndim != b.ndim:
            raise TypeInferenceError(
                f"{what}: rank mismatch {a!r} vs {b!r} (dynamic ranks unsupported)"
            )
        dims = []
        for da, db in zip(a.shape, b.shape):
            if same_dim(da, db):
                dims.append(da)
            elif isinstance(da, int) and isinstance(db, int) and da == db:
                dims.append(da)
            else:
                dims.append(Any())
        return TensorType(tuple(dims), a.dtype)
    if isinstance(a, TupleType) and isinstance(b, TupleType):
        if len(a.fields) != len(b.fields):
            raise TypeInferenceError(f"{what}: tuple arity mismatch")
        return TupleType([join_types(x, y, what) for x, y in zip(a.fields, b.fields)])
    if isinstance(a, FuncType) and isinstance(b, FuncType):
        if len(a.arg_types) != len(b.arg_types):
            raise TypeInferenceError(f"{what}: function arity mismatch")
        args = [join_types(x, y, what) for x, y in zip(a.arg_types, b.arg_types)]
        return FuncType(args, join_types(a.ret_type, b.ret_type, what))
    if isinstance(a, TypeCall) and isinstance(b, TypeCall) and a.func is b.func:
        if len(a.args) != len(b.args):
            raise TypeInferenceError(f"{what}: ADT arity mismatch")
        return TypeCall(a.func, [join_types(x, y, what) for x, y in zip(a.args, b.args)])
    if isinstance(a, StorageType) and isinstance(b, StorageType):
        return a
    raise TypeInferenceError(f"{what}: incompatible types {a!r} vs {b!r}")


def check_subtype(specific: Type, general: Type, what: str = "subtype check") -> None:
    """Sub-shaping check: *specific* may flow where *general* is expected.

    A concrete dim is a sub-shape of ``Any``; ``Any`` is NOT a sub-shape of
    a concrete dim (that direction needs a runtime check, which shape
    functions perform).
    """
    if specific is general:
        return
    if isinstance(specific, TensorType) and isinstance(general, TensorType):
        if specific.dtype != general.dtype:
            raise TypeInferenceError(
                f"{what}: dtype mismatch {specific.dtype} vs {general.dtype}"
            )
        if specific.ndim != general.ndim:
            raise TypeInferenceError(f"{what}: rank mismatch {specific!r} vs {general!r}")
        for ds, dg in zip(specific.shape, general.shape):
            if isinstance(dg, Any):
                continue  # anything flows into Any
            if isinstance(ds, Any):
                raise TypeInferenceError(
                    f"{what}: dynamic dim where static {dg} required "
                    f"({specific!r} vs {general!r}); insert a runtime check"
                )
            if ds != dg:
                raise TypeInferenceError(f"{what}: {specific!r} is not a subtype of {general!r}")
        return
    if isinstance(specific, TupleType) and isinstance(general, TupleType):
        if len(specific.fields) != len(general.fields):
            raise TypeInferenceError(f"{what}: tuple arity mismatch")
        for s, g in zip(specific.fields, general.fields):
            check_subtype(s, g, what)
        return
    if isinstance(specific, FuncType) and isinstance(general, FuncType):
        if len(specific.arg_types) != len(general.arg_types):
            raise TypeInferenceError(f"{what}: function arity mismatch")
        # Contravariant in arguments, covariant in result.
        for s, g in zip(specific.arg_types, general.arg_types):
            check_subtype(g, s, what)
        check_subtype(specific.ret_type, general.ret_type, what)
        return
    if isinstance(specific, TypeCall) and isinstance(general, TypeCall):
        if specific.func is not general.func or len(specific.args) != len(general.args):
            raise TypeInferenceError(f"{what}: ADT mismatch {specific!r} vs {general!r}")
        for s, g in zip(specific.args, general.args):
            check_subtype(s, g, what)
        return
    if isinstance(specific, StorageType) and isinstance(general, StorageType):
        return
    raise TypeInferenceError(f"{what}: incompatible types {specific!r} vs {general!r}")
