"""Sub-shaping analysis: which ``Any`` dims are provably identical (§4.1).

Each ``Any`` carries an identity token; type relations propagate tokens
when equality is provable (e.g. elementwise ops preserve the input dims).
This module groups the typed expressions of a function by token so the
symbolic code generator can assign one symbolic variable per group and
emit shape-specialized kernels.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.ir.analysis import iter_nodes
from repro.ir.expr import Expr, Function
from repro.ir.types import Any, TensorType, TupleType, Type


def _tensor_types(ty: Type, prefix: Tuple[int, ...] = ()) -> List[Tuple[Tuple[int, ...], TensorType]]:
    if isinstance(ty, TensorType):
        return [(prefix, ty)]
    if isinstance(ty, TupleType):
        out = []
        for i, field in enumerate(ty.fields):
            out.extend(_tensor_types(field, prefix + (i,)))
        return out
    return []


def any_dim_groups(func: Function) -> Dict[int, List[Tuple[Expr, Tuple[int, ...], int]]]:
    """Group every (expr, tuple-path, dim-index) carrying an ``Any`` by its
    identity token. Requires a type-checked function."""
    groups: Dict[int, List[Tuple[Expr, Tuple[int, ...], int]]] = defaultdict(list)
    for node in iter_nodes(func):
        ty = node.checked_type
        if ty is None:
            continue
        for path, tty in _tensor_types(ty):
            for i, dim in enumerate(tty.shape):
                if isinstance(dim, Any):
                    groups[dim.token].append((node, path, i))
    return dict(groups)


def shared_any_dims(a: TensorType, b: TensorType) -> List[Tuple[int, int]]:
    """Pairs of dim indices (i in a, j in b) that are the same runtime value."""
    out: List[Tuple[int, int]] = []
    for i, da in enumerate(a.shape):
        if not isinstance(da, Any):
            continue
        for j, db in enumerate(b.shape):
            if isinstance(db, Any) and da.token == db.token:
                out.append((i, j))
    return out


def num_symbolic_vars(func: Function) -> int:
    """How many distinct symbolic dimensions a kernel for *func* needs —
    the quantity §4.5 cares about (current dynamic models usually need 1)."""
    return len(any_dim_groups(func))
