"""Storage coalescing + kill insertion (§4.3).

Two rewrites over each manifested scope:

1. **Static storage reuse** — an ``alloc_storage`` with a compile-time
   size whose previous occupant's lifetime has ended is replaced by an
   alias to the dead storage (best-fit by size). This is what turns N
   allocations into a small number of regions that tensor allocations
   multiplex onto, and produces the §6.3 "47 % fewer buffer allocations".

2. **Kill insertion** — after the last use of a non-escaping alias group
   that owns storage, a ``memory.kill`` releases the buffer so the VM's
   pooling allocator can recycle it for *dynamic* allocations (the §6.3
   allocation-latency reduction).

The pass also records a :class:`MemoryPlanReport` used by the memory
benchmarks (allocation counts and peak footprint, before vs. after).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple as PyTuple

import numpy as np

from repro.ir.expr import (
    Call,
    Clause,
    Constant,
    Expr,
    Function,
    If,
    Let,
    Match,
    Tuple,
    TupleGetItem,
    Var,
)
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.types import TupleType
from repro.core.memory.liveness import AliasLiveness
from repro.passes.pass_manager import Pass
from repro.utils.naming import NameSupply


@dataclass
class MemoryPlanReport:
    """Allocation statistics aggregated across all planned scopes."""

    allocs_before: int = 0
    allocs_after: int = 0
    static_bytes_before: int = 0
    static_bytes_after: int = 0
    kills_inserted: int = 0

    @property
    def alloc_reduction(self) -> float:
        if self.allocs_before == 0:
            return 0.0
        return 1.0 - self.allocs_after / self.allocs_before

    def merge(self, other: "MemoryPlanReport") -> None:
        self.allocs_before += other.allocs_before
        self.allocs_after += other.allocs_after
        self.static_bytes_before += other.static_bytes_before
        self.static_bytes_after += other.static_bytes_after
        self.kills_inserted += other.kills_inserted


def _static_alloc_size(value: Expr) -> Optional[int]:
    if (
        isinstance(value, Call)
        and isinstance(value.op, Op)
        and value.op.name == "memory.alloc_storage"
        and value.attrs.get("static")
        and isinstance(value.args[0], Constant)
    ):
        return int(value.args[0].data.reshape(()).item())
    return None


def _is_alloc_storage(value: Expr) -> bool:
    return (
        isinstance(value, Call)
        and isinstance(value.op, Op)
        and value.op.name == "memory.alloc_storage"
    )


class _Planner:
    def __init__(self, names: NameSupply, report: MemoryPlanReport) -> None:
        self.names = names
        self.report = report

    def plan_scope(self, scope: Expr) -> Expr:
        if not isinstance(scope, Let):
            return scope
        # First recurse into nested scopes, then plan this chain.
        rewritten = self._rewrite_nested(scope)
        coalesced = self._coalesce(rewritten)
        return self._insert_kills(coalesced)

    # -- nested scopes ---------------------------------------------------------
    def _rewrite_nested(self, scope: Expr) -> Expr:
        bindings: List[PyTuple[Var, Expr]] = []
        node: Expr = scope
        while isinstance(node, Let):
            value = node.value
            if isinstance(value, If):
                value = If(
                    value.cond,
                    self.plan_scope(value.true_branch),
                    self.plan_scope(value.false_branch),
                )
            elif isinstance(value, Match):
                value = Match(
                    value.data,
                    [Clause(c.pattern, self.plan_scope(c.rhs)) for c in value.clauses],
                    value.complete,
                )
            elif isinstance(value, Function) and not value.is_primitive:
                value = Function(
                    value.params, self.plan_scope(value.body), value.ret_type, value.attrs
                )
            bindings.append((node.var, value))
            node = node.body
        out = node
        for var, value in reversed(bindings):
            out = Let(var, value, out)
        return out

    # -- storage coalescing ------------------------------------------------------
    def _coalesce(self, scope: Expr) -> Expr:
        live = AliasLiveness(scope)
        bindings = live.bindings
        n = len(bindings)

        # Release schedule for reusable static storages. Escaping groups
        # may *take* a dead storage from the pool (the donor is never used
        # again) but are never released back into it.
        intervals: Dict[Var, PyTuple[int, int]] = {}
        escaping: set = set()
        for var, value in bindings:
            size = _static_alloc_size(value)
            if size is None:
                continue
            self.report.static_bytes_before += size
            if live.group_escapes(var):
                escaping.add(var)
                continue
            intervals[var] = live.group_interval(var)

        releases: Dict[int, List[PyTuple[Var, int, object]]] = {}
        pool: List[PyTuple[Var, int, object]] = []  # (storage var, size, device)
        replacement: Dict[Var, Var] = {}
        reused_bytes = 0

        new_bindings: List[PyTuple[Var, Expr]] = []
        for i, (var, value) in enumerate(bindings):
            for entry in releases.pop(i, ()):  # storages whose life ended
                pool.append(entry)
            size = _static_alloc_size(value)
            if size is not None and (var in intervals or var in escaping):
                end = intervals[var][1] if var in intervals else None
                device = value.attrs.get("device")  # stamped by DevicePlace
                # Best fit: smallest pooled storage on the *same device*
                # that is large enough.
                best = None
                for k, (cand, cand_size, cand_dev) in enumerate(pool):
                    if cand_size >= size and cand_dev == device and (
                        best is None or cand_size < pool[best][1]
                    ):
                        best = k
                if best is not None:
                    cand, cand_size, cand_dev = pool.pop(best)
                    replacement[var] = cand
                    reused_bytes += size
                    if end is not None:
                        # The reused region frees again when this tensor dies.
                        releases.setdefault(end + 1, []).append((cand, cand_size, cand_dev))
                    new_bindings.append((var, cand))  # alias, not a fresh alloc
                    continue
                if end is not None:
                    releases.setdefault(end + 1, []).append((var, size, device))
                self.report.static_bytes_after += size
            new_bindings.append((var, value))

        for var, value in new_bindings:
            if _is_alloc_storage(value):
                self.report.allocs_after += 1
        for var, value in bindings:
            if _is_alloc_storage(value):
                self.report.allocs_before += 1

        out: Expr = live.tail
        for var, value in reversed(new_bindings):
            out = Let(var, value, out)
        return out

    # -- kill insertion ----------------------------------------------------------------
    def _insert_kills(self, scope: Expr) -> Expr:
        if not isinstance(scope, Let):
            return scope
        live = AliasLiveness(scope)
        bindings = live.bindings

        # One kill per alias group that owns storage and does not escape,
        # placed after the group's last use.
        kills_at: Dict[int, List[Var]] = {}
        killed_groups: Set[Var] = set()
        for var, value in bindings:
            if not _is_alloc_storage(value) and not (
                isinstance(value, Var) and _storage_alias(value, bindings)
            ):
                continue
            rep = live.aliases.find(var)
            if rep in killed_groups:
                continue
            if live.group_escapes(var):
                continue
            start, end = live.group_interval(var)
            killed_groups.add(rep)
            # Kill every in-scope member of the alias group: the VM's
            # registers are reference counted, so the storage is only
            # reclaimed when the last register referencing it is clobbered.
            members = [m for m in live.group_members(var) if m in live.index_of]
            kills_at.setdefault(end, []).extend(members)

        new_bindings: List[PyTuple[Var, Expr]] = []
        for i, (var, value) in enumerate(bindings):
            new_bindings.append((var, value))
            for victim in kills_at.get(i, ()):
                unit = Var(self.names.fresh("k"))
                new_bindings.append(
                    (unit, Call(Op.get("memory.kill"), [victim], {}))
                )
                self.report.kills_inserted += 1

        out: Expr = live.tail
        for var, value in reversed(new_bindings):
            out = Let(var, value, out)
        return out


def _storage_alias(value: Var, bindings: List[PyTuple[Var, Expr]]) -> bool:
    """Is this move-binding ultimately a storage alias?"""
    targets = {var: val for var, val in bindings}
    seen = set()
    node: Expr = value
    while isinstance(node, Var) and node in targets and id(node) not in seen:
        seen.add(id(node))
        node = targets[node]
    return _is_alloc_storage(node) if isinstance(node, Expr) else False


class MemoryPlan(Pass):
    name = "MemoryPlan"

    def __init__(self) -> None:
        self.report = MemoryPlanReport()

    def run(self, mod: IRModule) -> IRModule:
        out = mod.shallow_copy()
        names = NameSupply()
        for gv, func in list(out.functions.items()):
            if func.is_primitive:
                continue
            planner = _Planner(names, self.report)
            out.functions[gv] = Function(
                func.params,
                planner.plan_scope(func.body),
                func.ret_type,
                func.attrs,
            )
        return out
