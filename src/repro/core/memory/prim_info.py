"""Analysis of primitive (fused) functions for shape-function purposes.

A fused group is either (a) a composition of data-independent ops — its
shape function is the *composition* of the member shape functions, which
we obtain by abstractly interpreting the body over shapes — or (b) a
singleton dynamic op (data-dependent / upper-bound), guaranteed by the
fusion policy of §4.2. This module classifies a primitive function and
provides its composed shape function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CompilerError
from repro.ir.expr import Call, Constant, Expr, Function, Let, Tuple as IRTuple, TupleGetItem, Var
from repro.ir.op import Op
from repro.ir.types import TensorType, TupleType
from repro.ops import get_op_def
from repro.ops.registry import OpDef, ShapeFuncMode

Shape = Tuple[int, ...]


@dataclass
class PrimFuncInfo:
    """Classification of one primitive function."""

    func: Function
    ops: List[str]
    mode: ShapeFuncMode
    anchor: Optional[OpDef]  # the dynamic op for DD/UB singletons
    out_ranks: List[int]
    num_outputs: int
    returns_shape: bool

    @property
    def is_dynamic(self) -> bool:
        return self.mode is not ShapeFuncMode.DATA_INDEPENDENT


def _out_tensor_types(func: Function) -> List[TensorType]:
    ret = func.ret_type if func.ret_type is not None else func.body.checked_type
    if isinstance(ret, TensorType):
        return [ret]
    if isinstance(ret, TupleType):
        out = []
        for field in ret.fields:
            if not isinstance(field, TensorType):
                raise CompilerError(f"primitive function returns non-tensor field {field!r}")
            out.append(field)
        return out
    raise CompilerError(f"primitive function with unsupported return type {ret!r}")


def analyze_prim_func(func: Function) -> PrimFuncInfo:
    if not func.is_primitive:
        raise CompilerError("analyze_prim_func expects a primitive function")
    ops: List[str] = []
    node: Expr = func.body
    calls: List[Call] = []
    while isinstance(node, Let):
        if isinstance(node.value, Call):
            calls.append(node.value)
        node = node.body
    if isinstance(node, Call):
        calls.append(node)
    for call in calls:
        if isinstance(call.op, Op):
            ops.append(call.op.name)
    if not ops:
        raise CompilerError("primitive function without operator calls")

    dynamic_defs = [get_op_def(name) for name in ops if get_op_def(name).is_dynamic_shape_func]
    out_types = _out_tensor_types(func)
    out_ranks = [t.ndim for t in out_types]
    if dynamic_defs:
        if len(ops) != 1:
            raise CompilerError(
                "fusion policy violation: dynamic-shape op fused with others: "
                + ", ".join(ops)
            )
        anchor = dynamic_defs[0]
        return PrimFuncInfo(
            func=func,
            ops=ops,
            mode=anchor.shape_func_mode,
            anchor=anchor,
            out_ranks=out_ranks,
            num_outputs=len(out_types),
            returns_shape=anchor.returns_shape,
        )
    return PrimFuncInfo(
        func=func,
        ops=ops,
        mode=ShapeFuncMode.DATA_INDEPENDENT,
        anchor=None,
        out_ranks=out_ranks,
        num_outputs=len(out_types),
        returns_shape=False,
    )


def run_fused_shape_func(
    info: PrimFuncInfo,
    in_shapes: Sequence[Shape],
    in_values: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> List[Shape]:
    """Execute the (composed) shape function of a primitive function.

    For data-independent groups this abstractly interprets the body over
    shapes, threading each member op's shape function — the "connect the
    shape functions of basic operators" composition of §4.2. For dynamic
    singletons it calls the anchor op's shape function directly (with
    values for the data-dependent mode).
    """
    func = info.func
    if info.anchor is not None:
        return info.anchor.shape_func(list(in_shapes), list(in_values or []), _anchor_attrs(func))

    env: Dict[Var, object] = {}
    if len(func.params) != len(in_shapes):
        raise CompilerError(
            f"shape function arity mismatch: {len(func.params)} params, "
            f"{len(in_shapes)} shapes"
        )
    for param, shape in zip(func.params, in_shapes):
        env[param] = tuple(int(d) for d in shape)

    def eval_shape(expr: Expr):
        if isinstance(expr, Var):
            return env[expr]
        if isinstance(expr, Constant):
            return tuple(expr.value.shape)
        if isinstance(expr, IRTuple):
            return tuple(eval_shape(f) for f in expr.fields)
        if isinstance(expr, TupleGetItem):
            return eval_shape(expr.tuple_value)[expr.index]
        if isinstance(expr, Call) and isinstance(expr.op, Op):
            op_def = get_op_def(expr.op.name)
            if op_def.shape_func is None:
                raise CompilerError(f"op {expr.op.name} has no shape function")
            shapes = [eval_shape(a) for a in expr.args]
            outs = op_def.shape_func(shapes, None, expr.attrs)
            return outs[0] if len(outs) == 1 else tuple(outs)
        raise CompilerError(f"cannot interpret {type(expr).__name__} in shape function")

    node: Expr = func.body
    while isinstance(node, Let):
        env[node.var] = eval_shape(node.value)
        node = node.body
    result = eval_shape(node)
    if isinstance(result, tuple) and result and isinstance(result[0], tuple):
        return [tuple(s) for s in result]
    return [tuple(result)]


def _anchor_attrs(func: Function) -> dict:
    """Attrs of the single op call in a dynamic singleton."""
    node: Expr = func.body
    while isinstance(node, Let):
        node = node.body
    if isinstance(node, Call):
        return node.attrs
    # body may be `let v = call; v`
    node = func.body
    while isinstance(node, Let):
        if isinstance(node.value, Call):
            return node.value.attrs
        node = node.body
    raise CompilerError("dynamic primitive without a call body")
