"""Manifest allocation (§4.3).

Rewrites each kernel invocation from the implicit-allocation form

    let %out = prim_fn(%a, %b);

into the explicit form with the four memory constructs —

    let %sto  = memory.alloc_storage(<size>);
    let %out  = memory.alloc_tensor(%sto, 0, <shape>);
    let %_    = vm.invoke_mut(prim_fn, (%a, %b), (%out,));

— and, for dynamically-shaped outputs, inserts the shape-function
machinery first (the paper's fixed-point of "allocate for both the
compute and the necessary shape functions"):

    let %sh0  = vm.shape_of(%a);
    let %sh1  = vm.shape_of(%b);
    let %osh  = vm.shape_func(prim_fn, (%sh0, %sh1));
    let %sz   = vm.storage_size(%osh);
    let %sto  = memory.alloc_storage(%sz);
    let %out  = memory.alloc_tensor(%sto, 0, %osh);
    let %_    = vm.invoke_mut(prim_fn, (%a, %b), (%out,));

Data-dependent shape functions receive the input *values* instead of
``shape_of`` results; upper-bound ops additionally get a second output
carrying the actual shape, and the result is sliced with
``vm.slice_upper_bound`` (§4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple as PyTuple

import numpy as np

from repro.errors import CompilerError
from repro.ir.expr import (
    Call,
    Clause,
    Constant,
    Expr,
    Function,
    If,
    Let,
    Match,
    Tuple,
    TupleGetItem,
    Var,
    const,
)
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.types import Any, StorageType, TensorType, TupleType, Type
from repro.ops.registry import ShapeFuncMode
from repro.core.memory.prim_info import PrimFuncInfo, analyze_prim_func
from repro.passes.pass_manager import Pass
from repro.tensor.dtype import dtype_bytes
from repro.utils.naming import NameSupply

DEFAULT_ALIGNMENT = 64


def _align(nbytes: int, alignment: int = DEFAULT_ALIGNMENT) -> int:
    return max(alignment, (nbytes + alignment - 1) // alignment * alignment)


def static_tensor_bytes(ty: TensorType) -> int:
    n = ty.num_elements()
    if n is None:
        raise CompilerError(f"static_tensor_bytes on dynamic type {ty!r}")
    return max(1, n) * dtype_bytes(ty.dtype)


class _Manifest:
    def __init__(self, names: NameSupply) -> None:
        self.names = names
        self._prim_cache: Dict[tuple, Function] = {}

    # -- scope driver ---------------------------------------------------------
    def rewrite_scope(self, expr: Expr) -> Expr:
        bindings: List[PyTuple[Var, Expr]] = []
        node: Expr = expr
        while isinstance(node, Let):
            bindings.append((node.var, node.value))
            node = node.body
        tail = node

        out: List[PyTuple[Var, Expr]] = []
        for var, value in bindings:
            if isinstance(value, Call) and isinstance(value.op, Function) and value.op.is_primitive:
                out.extend(self.lower_prim_call(var, value))
            elif isinstance(value, If):
                out.append(
                    (
                        var,
                        If(
                            value.cond,
                            self.rewrite_scope(value.true_branch),
                            self.rewrite_scope(value.false_branch),
                        ),
                    )
                )
            elif isinstance(value, Match):
                out.append(
                    (
                        var,
                        Match(
                            value.data,
                            [
                                Clause(c.pattern, self.rewrite_scope(c.rhs))
                                for c in value.clauses
                            ],
                            value.complete,
                        ),
                    )
                )
            elif isinstance(value, Function) and not value.is_primitive:
                out.append(
                    (
                        var,
                        Function(
                            value.params,
                            self.rewrite_scope(value.body),
                            value.ret_type,
                            value.attrs,
                        ),
                    )
                )
            else:
                out.append((var, value))

        result: Expr = tail
        for var, value in reversed(out):
            result = Let(var, value, result)
        return result

    # -- kernel-call lowering ----------------------------------------------------
    def lower_prim_call(self, var: Var, call: Call) -> List[PyTuple[Var, Expr]]:
        prim: Function = call.op  # type: ignore[assignment]
        info = analyze_prim_func(prim)
        out_ty = var.checked_type
        if out_ty is None:
            raise CompilerError("ManifestAlloc requires a type-checked module")
        out_types = self._tensor_fields(out_ty)

        seq: List[PyTuple[Var, Expr]] = []
        if all(t.is_static for t in out_types) and not info.returns_shape:
            out_vars = [
                self._alloc_static(seq, t, hint=var.name_hint) for t in out_types
            ]
            self._invoke(seq, prim, list(call.args), out_vars)
            self._bind_result(seq, var, out_vars, out_ty)
            return seq

        # Dynamic outputs: run the shape function first.
        shape_vars = self._emit_shape_func(seq, prim, info, list(call.args))
        if info.returns_shape:
            # Upper-bound op: outputs are (padded data, actual shape); the
            # result is sliced down to the actual shape by a copy kernel
            # allocated from the *actual* shape (§4.2).
            assert len(out_types) == 1, "upper-bound ops have one data output"
            data_ty = out_types[0]
            ub_var = self._alloc_dynamic(seq, shape_vars[0], data_ty, hint="ub")
            actual_ty = TensorType((data_ty.ndim,), "int64")
            actual_var = self._alloc_static(seq, actual_ty, hint="actual")
            self._invoke(seq, prim, list(call.args), [ub_var, actual_var])
            out = self._alloc_dynamic(seq, actual_var, data_ty, hint=var.name_hint)
            slice_prim = self._slice_prim(data_ty)
            self._invoke(seq, slice_prim, [ub_var, actual_var], [out], kind="compute")
            seq.append((var, out))
            return seq

        out_vars = []
        for k, t in enumerate(out_types):
            if t.is_static:
                out_vars.append(self._alloc_static(seq, t, hint=var.name_hint))
            else:
                out_vars.append(
                    self._alloc_dynamic(seq, shape_vars[k], t, hint=var.name_hint)
                )
        self._invoke(seq, prim, list(call.args), out_vars)
        self._bind_result(seq, var, out_vars, out_ty)
        return seq

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _tensor_fields(ty: Type) -> List[TensorType]:
        if isinstance(ty, TensorType):
            return [ty]
        if isinstance(ty, TupleType):
            fields = []
            for f in ty.fields:
                if not isinstance(f, TensorType):
                    raise CompilerError(f"kernel output field is not a tensor: {f!r}")
                fields.append(f)
            return fields
        raise CompilerError(f"kernel output type unsupported: {ty!r}")

    def _alloc_static(
        self, seq: List, ty: TensorType, hint: str = "t"
    ) -> Var:
        nbytes = _align(static_tensor_bytes(ty))
        sto = Var(self.names.fresh("sto"), StorageType())
        seq.append(
            (
                sto,
                Call(
                    Op.get("memory.alloc_storage"),
                    [const(np.int64(nbytes), dtype="int64")],
                    {"alignment": DEFAULT_ALIGNMENT, "static": True},
                ),
            )
        )
        out = Var(self.names.fresh(f"{hint}_buf"), ty)
        seq.append(
            (
                out,
                Call(
                    Op.get("memory.alloc_tensor"),
                    [sto, const(np.int64(0), dtype="int64")],
                    {"ttype": ty, "const_shape": ty.shape},
                ),
            )
        )
        return out

    def _alloc_dynamic(self, seq: List, shape_var: Var, ty: TensorType, hint: str = "t") -> Var:
        # Storage size is itself computed by emitted code: a tiny host
        # "kernel" over the shape vector, with a statically-allocated
        # scalar output — the fixed point of §4.3.
        size = self._alloc_static(seq, TensorType((), "int64"), hint="sz")
        size_prim = self._storage_size_prim(ty.ndim, ty.dtype)
        self._invoke(seq, size_prim, [shape_var], [size], kind="host_scalar")
        sto = Var(self.names.fresh("sto"), StorageType())
        seq.append(
            (
                sto,
                Call(
                    Op.get("memory.alloc_storage"),
                    [size],
                    {"alignment": DEFAULT_ALIGNMENT, "static": False},
                ),
            )
        )
        out = Var(self.names.fresh(f"{hint}_buf"), ty)
        seq.append(
            (
                out,
                Call(
                    Op.get("memory.alloc_tensor"),
                    [sto, const(np.int64(0), dtype="int64"), shape_var],
                    {"ttype": ty},
                ),
            )
        )
        return out

    def _emit_shape_func(
        self, seq: List, prim: Function, info: PrimFuncInfo, args: List[Expr]
    ) -> List[Var]:
        """Invoke the (compiled) shape function of *prim*: allocate its
        output shape vectors statically (rank is known), feed it either
        ``shape_of`` results (data-independent / upper-bound) or the input
        values themselves (data-dependent), §4.2."""
        if info.mode is ShapeFuncMode.DATA_DEPENDENT:
            sf_inputs: List[Expr] = list(args)  # values, not shapes
        else:
            sf_inputs = []
            for arg in args:
                sh = Var(self.names.fresh("sh"), None)
                seq.append((sh, Call(Op.get("vm.shape_of"), [arg], {})))
                sf_inputs.append(sh)
        out_vars = [
            self._alloc_static(seq, TensorType((rank,), "int64"), hint="osh")
            for rank in info.out_ranks
        ]
        self._invoke(seq, prim, sf_inputs, out_vars, kind="shape_func")
        return out_vars

    def _invoke(
        self,
        seq: List,
        prim: Function,
        args: List[Expr],
        out_vars: List[Var],
        kind: str = "compute",
    ) -> None:
        unit = Var(self.names.fresh("u"), None)
        seq.append(
            (
                unit,
                Call(
                    Op.get("vm.invoke_mut"),
                    [prim, Tuple(args), Tuple(out_vars)],
                    {"kind": kind},
                ),
            )
        )

    # Tiny helper primitives (cached so the kernel cache dedupes them).
    def _storage_size_prim(self, ndim: int, dtype: str) -> Function:
        key = ("storage_size", ndim, dtype)
        prim = self._prim_cache.get(key)
        if prim is None:
            shp = Var("shape", TensorType((ndim,), "int64"))
            body = Call(Op.get("vm.storage_size"), [shp], {"dtype": dtype})
            prim = Function([shp], body, TensorType((), "int64"), {"primitive": True})
            self._prim_cache[key] = prim
        return prim

    def _slice_prim(self, data_ty: TensorType) -> Function:
        key = ("slice_ub", data_ty.ndim, data_ty.dtype)
        prim = self._prim_cache.get(key)
        if prim is None:
            data = Var("ub_data", TensorType(tuple(Any() for _ in data_ty.shape), data_ty.dtype))
            actual = Var("actual", TensorType((data_ty.ndim,), "int64"))
            body = Call(Op.get("vm.slice_upper_bound"), [data, actual], {})
            prim = Function(
                [data, actual],
                body,
                TensorType(tuple(Any() for _ in data_ty.shape), data_ty.dtype),
                {"primitive": True},
            )
            self._prim_cache[key] = prim
        return prim

    def _bind_result(self, seq: List, var: Var, out_vars: List[Var], out_ty: Type) -> None:
        if isinstance(out_ty, TensorType):
            # Rebind the original variable to the output buffer (a Move).
            seq.append((var, out_vars[0]))
        else:
            seq.append((var, Tuple(out_vars)))


class ManifestAlloc(Pass):
    """The explicit-allocation rewrite; run after fusion + ANF + typing."""

    name = "ManifestAlloc"

    def run(self, mod: IRModule) -> IRModule:
        out = mod.shallow_copy()
        names = NameSupply()
        for gv, func in list(out.functions.items()):
            if func.is_primitive:
                continue
            rewriter = _Manifest(names)
            out.functions[gv] = Function(
                func.params, rewriter.rewrite_scope(func.body), func.ret_type, func.attrs
            )
        return out
