"""Alias-aware liveness over one ANF scope.

Works at binding granularity: a use anywhere inside binding *i*'s value
(including nested branch scopes hanging off it) extends the used variable's
lifetime to *i*. Aliases (moves, tuples, projections, tensor views, and
tensors carved from storage) share one lifetime via union-find.

Escape rules are deliberately conservative — a variable captured by a
closure, an ADT constructor, a non-operator call, or used inside an
``if``/``match`` branch is treated as escaping (never killed, never
reused). Straight-line compute chains — where all the memory traffic of a
BERT/LSTM cell lives — are fully analyzable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple as PyTuple

from repro.ir.analysis import iter_nodes
from repro.ir.expr import (
    Call,
    Constant,
    Expr,
    Function,
    If,
    Let,
    Match,
    Tuple,
    TupleGetItem,
    Var,
)
from repro.ir.op import Op
from repro.utils.union_find import UnionFind

# Ops whose result aliases their first argument's buffer.
_VIEW_OPS = {"vm.slice_upper_bound", "vm.reshape_tensor"}


class AliasLiveness:
    """Liveness + alias + escape facts for one scope chain."""

    def __init__(self, scope: Expr) -> None:
        self.bindings: List[PyTuple[Var, Expr]] = []
        node: Expr = scope
        while isinstance(node, Let):
            self.bindings.append((node.var, node.value))
            node = node.body
        self.tail: Expr = node
        self.index_of: Dict[Var, int] = {
            var: i for i, (var, _) in enumerate(self.bindings)
        }
        self.aliases: UnionFind[Var] = UnionFind()
        self.last_use: Dict[Var, int] = {}
        self.escaping: Set[Var] = set()
        self._analyze()

    # -- construction ------------------------------------------------------------
    def _analyze(self) -> None:
        n = len(self.bindings)
        for i, (var, value) in enumerate(self.bindings):
            self.aliases.add(var)
            for used in self._direct_uses(value):
                self.last_use[used] = i
            self._record_aliases(var, value)
            self._record_escapes(value)
        # Tail use.
        if isinstance(self.tail, Var):
            self.last_use[self.tail] = n
            self.escaping.add(self.tail)

    @staticmethod
    def _direct_uses(value: Expr):
        for node in iter_nodes(value):
            if isinstance(node, Var):
                yield node

    def _record_aliases(self, var: Var, value: Expr) -> None:
        if isinstance(value, Var):
            self.aliases.union(var, value)
        elif isinstance(value, Tuple):
            for field in value.fields:
                if isinstance(field, Var):
                    self.aliases.union(var, field)
        elif isinstance(value, TupleGetItem):
            if isinstance(value.tuple_value, Var):
                self.aliases.union(var, value.tuple_value)
        elif isinstance(value, Call) and isinstance(value.op, Op):
            name = value.op.name
            if name in _VIEW_OPS and isinstance(value.args[0], Var):
                self.aliases.union(var, value.args[0])
            elif name == "memory.alloc_tensor" and isinstance(value.args[0], Var):
                # A tensor aliases the storage it is carved from.
                self.aliases.union(var, value.args[0])

    def _record_escapes(self, value: Expr) -> None:
        if isinstance(value, (If, Match)):
            # Conservative: anything an alternate-control-flow value touches
            # may alias its result.
            for node in iter_nodes(value):
                if isinstance(node, Var):
                    self.escaping.add(node)
        elif isinstance(value, Function):
            for node in iter_nodes(value.body):
                if isinstance(node, Var):
                    self.escaping.add(node)
        elif isinstance(value, Call):
            captures = not isinstance(value.op, Op) or (
                value.op.name == "vm.alloc_closure"
            )
            if captures:
                # Closure / global / constructor call: arguments escape
                # (captured in an ADT, a closure environment, or owned by
                # the callee's frame).
                for arg in value.args:
                    for node in iter_nodes(arg):
                        if isinstance(node, Var):
                            self.escaping.add(node)

    # -- queries --------------------------------------------------------------------
    def group_interval(self, var: Var) -> PyTuple[int, int]:
        """[def, last_use] over the variable's alias group."""
        rep = self.aliases.find(var)
        members = [
            m for m in self.aliases.keys() if self.aliases.find(m) == rep
        ]
        start = min(self.index_of.get(m, 0) for m in members)
        end = max(
            max(self.last_use.get(m, -1), self.index_of.get(m, -1)) for m in members
        )
        return start, end

    def group_escapes(self, var: Var) -> bool:
        rep = self.aliases.find(var)
        for m in list(self.aliases.keys()):
            if self.aliases.find(m) == rep:
                if m in self.escaping or m not in self.index_of:
                    # Escaping use, or a variable not bound in this scope
                    # (a parameter or outer binding) — never reclaim.
                    return True
        return False

    def group_members(self, var: Var) -> List[Var]:
        rep = self.aliases.find(var)
        return [m for m in self.aliases.keys() if self.aliases.find(m) == rep]
