"""Memory planning: manifest allocation + storage coalescing (§4.3)."""

from repro.core.memory.prim_info import PrimFuncInfo, analyze_prim_func, run_fused_shape_func
from repro.core.memory.manifest import ManifestAlloc
from repro.core.memory.plan import MemoryPlan, MemoryPlanReport
from repro.core.memory.liveness import AliasLiveness

__all__ = [
    "PrimFuncInfo",
    "analyze_prim_func",
    "run_fused_shape_func",
    "ManifestAlloc",
    "MemoryPlan",
    "MemoryPlanReport",
    "AliasLiveness",
]
