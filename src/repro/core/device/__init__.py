"""Heterogeneous device placement (§4.4)."""

from repro.core.device.place import DevicePlace, PlacementReport

__all__ = ["DevicePlace", "PlacementReport"]
