"""Heterogeneous device placement via DeviceDomain unification (§4.4).

Implements the paper's rules with a union-find over variables plus fixed
device tokens:

* ``vm.shape_of`` outputs default to the **CPU domain** (a tensor's shape
  is host-readable wherever the data lives — no copy for the input);
* shape functions (``vm.shape_func``) and ``vm.storage_size`` take and
  produce CPU-domain values (cheap scalar arithmetic belongs on the host);
* ``vm.invoke_mut`` requires all of its tensor arguments — inputs and
  outputs — in the *kernel's* domain; kernels whose tensors are all
  scalars are placed on the host (the "CPU friendly" nodes of §2.2),
  everything else on the platform's compute device;
* ``memory.alloc_storage`` / ``memory.alloc_tensor`` propagate the domain
  of the tensors they back (via alias unification);
* ``device.device_copy`` breaks domains (and is what this pass inserts);
* move/tuple/projection/view bindings unify with their sources;
* ``if`` conditions are host-read (the interpreter branches on them).

Where unification finds a variable required on two different devices, the
pass inserts a ``device_copy`` at the conflicting use — "assigning each IR
node in a way that minimizes the number of cross-device copies".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple as PyTuple

from repro.errors import DeviceError
from repro.ir.expr import (
    Call,
    Clause,
    Constant,
    Expr,
    Function,
    If,
    Let,
    Match,
    Tuple,
    TupleGetItem,
    Var,
)
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.types import TensorType
from repro.passes.pass_manager import Pass
from repro.tensor.device import Device
from repro.utils.naming import NameSupply
from repro.utils.union_find import UnionFind


@dataclass
class PlacementReport:
    copies_inserted: int = 0
    host_kernels: int = 0
    device_kernels: int = 0


def _is_scalar_kernel(call: Call) -> bool:
    """Every tensor flowing through this invoke is scalar-like (rank 0, or
    a tiny static vector such as a shape): these are the "CPU friendly"
    nodes of §2.2 — loop counters, conditions, index arithmetic."""
    _, inputs, outputs = call.args
    for group in (inputs, outputs):
        assert isinstance(group, Tuple)
        for item in group.fields:
            ty = item.checked_type
            if isinstance(ty, TensorType) and ty.ndim > 0:
                n = ty.num_elements()
                if n is None or n > 8:
                    return False
    return True


class _Domains:
    """Union-find over vars with an optional fixed Device per class."""

    def __init__(self) -> None:
        self.uf: UnionFind[Var] = UnionFind()
        self.device: Dict[Var, Optional[Device]] = {}

    def _dev(self, var: Var) -> Optional[Device]:
        return self.device.get(self.uf.find(var))

    def fix(self, var: Var, device: Device) -> bool:
        """Pin *var*'s class to *device*. Returns False on conflict."""
        root = self.uf.find(var)
        current = self.device.get(root)
        if current is None:
            self.device[root] = device
            return True
        return current == device

    def union(self, a: Var, b: Var) -> bool:
        ra, rb = self.uf.find(a), self.uf.find(b)
        if ra == rb:
            return True
        da, db = self.device.get(ra), self.device.get(rb)
        if da is not None and db is not None and da != db:
            return False
        root = self.uf.union(ra, rb)
        self.device[root] = da if da is not None else db
        for stale in (ra, rb):
            if stale != root and stale in self.device:
                del self.device[stale]
        return True

    def lookup(self, var: Var) -> Optional[Device]:
        return self._dev(var)


class _Placer:
    def __init__(self, host: Device, compute: Device, names: NameSupply, report: PlacementReport) -> None:
        self.host = host
        self.compute = compute
        self.names = names
        self.report = report

    # ------------------------------------------------------------------ scopes
    def place_scope(self, scope: Expr, param_domains: Dict[Var, Device]) -> Expr:
        bindings: List[PyTuple[Var, Expr]] = []
        node: Expr = scope
        while isinstance(node, Let):
            bindings.append((node.var, node.value))
            node = node.body
        tail = node

        domains = _Domains()
        for var, dev in param_domains.items():
            domains.fix(var, dev)

        # Pass 1: unify aliases and record fixed constraints per binding.
        constraints: List[List[PyTuple[Var, Device]]] = []
        for var, value in bindings:
            cons: List[PyTuple[Var, Device]] = []
            if isinstance(value, Var):
                domains.union(var, value)
            elif isinstance(value, Tuple):
                for fexpr in value.fields:
                    if isinstance(fexpr, Var):
                        domains.union(var, fexpr)
            elif isinstance(value, TupleGetItem):
                if isinstance(value.tuple_value, Var):
                    domains.union(var, value.tuple_value)
            elif isinstance(value, Call) and isinstance(value.op, Op):
                cons = self._op_constraints(var, value, domains)
            elif isinstance(value, (If, Match)):
                # Branch results land wherever the consumer wants; the
                # condition/scrutinee is host-read.
                head = value.cond if isinstance(value, If) else value.data
                if isinstance(head, Var):
                    cons.append((head, self.host))
            constraints.append(cons)

        # Pass 2: solve; conflicting fixed constraints become copies.
        copies_needed: Dict[int, List[PyTuple[Var, Device]]] = {}
        for i, cons in enumerate(constraints):
            for cvar, cdev in cons:
                if not domains.fix(cvar, cdev):
                    copies_needed.setdefault(i, []).append((cvar, cdev))

        # Pass 3: rewrite — insert copies, stamp allocation devices,
        # recurse into nested scopes.
        out_bindings: List[PyTuple[Var, Expr]] = []
        copy_cache: Dict[PyTuple[int, Device], Var] = {}
        for i, (var, value) in enumerate(bindings):
            subst: Dict[int, Var] = {}
            for cvar, cdev in copies_needed.get(i, ()):
                key = (id(cvar), cdev)
                if key not in copy_cache:
                    src_dev = domains.lookup(cvar) or self.compute
                    copy_var = Var(self.names.fresh("dcopy"), cvar.checked_type)
                    out_bindings.append(
                        (
                            copy_var,
                            Call(
                                Op.get("device.device_copy"),
                                [cvar],
                                {"src_device": src_dev, "dst_device": cdev},
                            ),
                        )
                    )
                    copy_cache[key] = copy_var
                    self.report.copies_inserted += 1
                subst[id(cvar)] = copy_cache[key]

            value = self._substitute(value, subst)
            value = self._stamp_and_recurse(var, value, domains)
            out_bindings.append((var, value))

        result: Expr = tail
        for var, value in reversed(out_bindings):
            result = Let(var, value, result)
        return result

    # ------------------------------------------------------- constraint rules
    def _op_constraints(self, var: Var, call: Call, domains: _Domains) -> List[PyTuple[Var, Device]]:
        name = call.op.name  # type: ignore[union-attr]
        cons: List[PyTuple[Var, Device]] = []
        if name == "vm.shape_of":
            cons.append((var, self.host))  # output host; input unconstrained
        elif name in ("vm.shape_func", "vm.storage_size"):
            cons.append((var, self.host))
            for arg in call.args:
                if isinstance(arg, Tuple):
                    for fexpr in arg.fields:
                        if isinstance(fexpr, Var):
                            cons.append((fexpr, self.host))
                elif isinstance(arg, Var):
                    cons.append((arg, self.host))
        elif name == "vm.invoke_mut":
            # Shape functions and storage-size computations are pinned to
            # the host (§4.4); all-scalar kernels are host-friendly too.
            kind = call.attrs.get("kind", "compute")
            host_kind = kind in ("shape_func", "host_scalar")
            kernel_dev = self.host if host_kind or _is_scalar_kernel(call) else self.compute
            if kernel_dev == self.host:
                self.report.host_kernels += 1
            else:
                self.report.device_kernels += 1
            call.attrs["device"] = kernel_dev
            _, inputs, outputs = call.args
            for group in (inputs, outputs):
                assert isinstance(group, Tuple)
                for item in group.fields:
                    if isinstance(item, Var):
                        cons.append((item, kernel_dev))
        elif name == "memory.alloc_tensor":
            if isinstance(call.args[0], Var):
                domains.union(var, call.args[0])
            # Dynamic shape operand is a host-side shape vector.
            if len(call.args) > 2 and isinstance(call.args[2], Var):
                cons.append((call.args[2], self.host))
        elif name in ("vm.slice_upper_bound", "vm.reshape_tensor"):
            if isinstance(call.args[0], Var):
                domains.union(var, call.args[0])
            if len(call.args) > 1 and isinstance(call.args[1], Var):
                cons.append((call.args[1], self.host))
        elif name == "device.device_copy":
            cons.append((var, call.attrs["dst_device"]))
        return cons

    # --------------------------------------------------------------- rewriting
    @staticmethod
    def _substitute(value: Expr, subst: Dict[int, Var]) -> Expr:
        if not subst:
            return value
        if isinstance(value, Var):
            return subst.get(id(value), value)
        if isinstance(value, Call):
            new_args = []
            for arg in value.args:
                if isinstance(arg, Tuple):
                    new_args.append(
                        Tuple([subst.get(id(f), f) if isinstance(f, Var) else f for f in arg.fields])
                    )
                elif isinstance(arg, Var):
                    new_args.append(subst.get(id(arg), arg))
                else:
                    new_args.append(arg)
            return Call(value.op, new_args, value.attrs)
        if isinstance(value, Tuple):
            return Tuple([subst.get(id(f), f) if isinstance(f, Var) else f for f in value.fields])
        if isinstance(value, If) and isinstance(value.cond, Var):
            return If(subst.get(id(value.cond), value.cond), value.true_branch, value.false_branch)
        if isinstance(value, Match) and isinstance(value.data, Var):
            return Match(subst.get(id(value.data), value.data), value.clauses, value.complete)
        return value

    def _stamp_and_recurse(self, var: Var, value: Expr, domains: _Domains) -> Expr:
        if isinstance(value, Call) and isinstance(value.op, Op):
            if value.op.name == "memory.alloc_storage":
                device = domains.lookup(var) or self.compute
                value.attrs["device"] = device
            return value
        if isinstance(value, If):
            return If(
                value.cond,
                self.place_scope(value.true_branch, {}),
                self.place_scope(value.false_branch, {}),
            )
        if isinstance(value, Match):
            return Match(
                value.data,
                [Clause(c.pattern, self.place_scope(c.rhs, {})) for c in value.clauses],
                value.complete,
            )
        if isinstance(value, Function) and not value.is_primitive:
            return Function(
                value.params,
                self.place_scope(value.body, {p: self.compute for p in value.params}),
                value.ret_type,
                value.attrs,
            )
        return value


class DevicePlace(Pass):
    """Module pass: run placement over every non-primitive function."""

    name = "DevicePlace"

    def __init__(self, host: Device, compute: Device) -> None:
        self.host = host
        self.compute = compute
        self.report = PlacementReport()

    def run(self, mod: IRModule) -> IRModule:
        out = mod.shallow_copy()
        names = NameSupply()
        for gv, func in list(out.functions.items()):
            if func.is_primitive:
                continue
            placer = _Placer(self.host, self.compute, names, self.report)
            param_domains = {}
            for p in func.params:
                if isinstance(p.checked_type or p.type_annotation, TensorType):
                    param_domains[p] = self.compute
            out.functions[gv] = Function(
                func.params,
                placer.place_scope(func.body, param_domains),
                func.ret_type,
                func.attrs,
            )
        return out
