"""Nimble's core contribution: the dynamic-compilation machinery.

Sub-packages:

* :mod:`repro.core.typing` — the ``Any`` dynamic type system (§4.1);
* :mod:`repro.core.memory` — manifest allocation + memory planning (§4.3);
* :mod:`repro.core.device` — heterogeneous device placement (§4.4).

Symbolic codegen (§4.5) lives in :mod:`repro.codegen` and the VM (§5) in
:mod:`repro.vm`; together with this package they form the paper's system.
"""
