"""A-normal form conversion.

Every compound value (operator call, tuple, tuple projection, ``if``,
``match``) is bound to a fresh ``let`` variable; argument positions only
hold atoms (variables, constants, operator/constructor references, and
function literals). Downstream passes — manifest allocation, memory
planning, the VM compiler — all assume ANF, because explicit evaluation
order is what makes liveness and allocation analyses straightforward.

Shared sub-DAGs within one scope are bound once (graph-to-let conversion);
branches of ``if``/``match`` form child scopes so no computation is hoisted
across control flow (which would change what executes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple as PyTuple

from repro.errors import CompilerError
from repro.ir.expr import (
    Call,
    Clause,
    Constant,
    Constructor,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    Tuple,
    TupleGetItem,
    Var,
)
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.passes.pass_manager import Pass
from repro.utils.naming import NameSupply


def _is_atom(expr: Expr) -> bool:
    return isinstance(expr, (Var, Constant, GlobalVar, Op, Constructor))


class _Scope:
    """One let-scope being built."""

    def __init__(self) -> None:
        self.bindings: List[PyTuple[Var, Expr]] = []
        self.memo: Dict[int, Expr] = {}

    def wrap(self, result: Expr) -> Expr:
        out = result
        for var, value in reversed(self.bindings):
            out = Let(var, value, out)
        return out


class _ANF:
    def __init__(self, names: Optional[NameSupply] = None) -> None:
        self.names = names or NameSupply()

    def convert_function(self, func: Function) -> Function:
        if func.is_primitive:
            return func
        return Function(func.params, self.convert_scope(func.body), func.ret_type, func.attrs)

    def convert_scope(self, expr: Expr) -> Expr:
        # Strict ANF: even the scope result is an atom, so every scope is
        # ``let ...; let ...; %var`` — fusion, manifest allocation and the
        # VM compiler all key off this shape.
        scope = _Scope()
        result = self.visit(expr, scope, tail=False)
        return scope.wrap(result)

    def bind(self, value: Expr, scope: _Scope, key: Optional[int] = None, name: str = "t") -> Var:
        var = Var(self.names.fresh(name))
        scope.bindings.append((var, value))
        if key is not None:
            scope.memo[key] = var
        return var

    def visit(self, expr: Expr, scope: _Scope, tail: bool = False) -> Expr:
        """Return an atom for *expr* (or, in tail position, possibly a
        compound expression that is the scope's result)."""
        if _is_atom(expr):
            return expr
        key = id(expr)
        if key in scope.memo:
            return scope.memo[key]

        if isinstance(expr, Call):
            new_op = self.visit_callee(expr.op, scope)
            new_args = [self.visit(a, scope) for a in expr.args]
            call = Call(new_op, new_args, expr.attrs)
            if tail:
                return call
            return self.bind(call, scope, key)

        if isinstance(expr, Tuple):
            fields = [self.visit(f, scope) for f in expr.fields]
            tup = Tuple(fields)
            if tail:
                return tup
            return self.bind(tup, scope, key)

        if isinstance(expr, TupleGetItem):
            tup = self.visit(expr.tuple_value, scope)
            tgi = TupleGetItem(tup, expr.index)
            if tail:
                return tgi
            return self.bind(tgi, scope, key)

        if isinstance(expr, Let):
            # Respect user-written bindings: keep the same Var (unique
            # binders), normalize the bound value, continue with the body.
            node: Expr = expr
            while isinstance(node, Let):
                value = self.visit_value(node.value, scope)
                scope.bindings.append((node.var, value))
                scope.memo[id(node.var)] = node.var
                node = node.body
            return self.visit(node, scope, tail=tail)

        if isinstance(expr, If):
            cond = self.visit(expr.cond, scope)
            iff = If(
                cond,
                self.convert_scope(expr.true_branch),
                self.convert_scope(expr.false_branch),
            )
            if tail:
                return iff
            return self.bind(iff, scope, key, name="if")

        if isinstance(expr, Match):
            data = self.visit(expr.data, scope)
            clauses = [
                Clause(c.pattern, self.convert_scope(c.rhs)) for c in expr.clauses
            ]
            match = Match(data, clauses, expr.complete)
            if tail:
                return match
            return self.bind(match, scope, key, name="m")

        if isinstance(expr, Function):
            # Function literal: convert its body in a fresh scope; the
            # literal itself is a value (closure).
            return Function(
                expr.params, self.convert_scope(expr.body), expr.ret_type, expr.attrs
            )

        raise CompilerError(f"ToANF: unhandled node {type(expr).__name__}")

    def visit_callee(self, op: Expr, scope: _Scope) -> Expr:
        """Callee position: operators / globals / constructors stay; a
        primitive (fused) function literal stays inline; anything else is
        atomized like a normal value."""
        if isinstance(op, (Op, GlobalVar, Constructor, Var)):
            return op
        if isinstance(op, Function):
            if op.is_primitive:
                return op
            return self.visit(op, scope)
        return self.visit(op, scope)

    def visit_value(self, expr: Expr, scope: _Scope) -> Expr:
        """A value about to be bound by an existing let: keep it compound
        (one level) but atomize its children."""
        if _is_atom(expr):
            return expr
        if isinstance(expr, Call):
            new_op = self.visit_callee(expr.op, scope)
            return Call(new_op, [self.visit(a, scope) for a in expr.args], expr.attrs)
        if isinstance(expr, Tuple):
            return Tuple([self.visit(f, scope) for f in expr.fields])
        if isinstance(expr, TupleGetItem):
            return TupleGetItem(self.visit(expr.tuple_value, scope), expr.index)
        if isinstance(expr, If):
            return If(
                self.visit(expr.cond, scope),
                self.convert_scope(expr.true_branch),
                self.convert_scope(expr.false_branch),
            )
        if isinstance(expr, Match):
            return Match(
                self.visit(expr.data, scope),
                [Clause(c.pattern, self.convert_scope(c.rhs)) for c in expr.clauses],
                expr.complete,
            )
        if isinstance(expr, (Function, Let)):
            return self.visit(expr, scope)
        raise CompilerError(f"ToANF: unhandled value {type(expr).__name__}")


def to_anf(expr: Expr) -> Expr:
    """Convert a bare expression (testing convenience)."""
    conv = _ANF()
    if isinstance(expr, Function):
        return conv.convert_function(expr)
    return conv.convert_scope(expr)


class ToANF(Pass):
    name = "ToANF"

    def run(self, mod: IRModule) -> IRModule:
        out = mod.shallow_copy()
        conv = _ANF()
        for gv, func in list(out.functions.items()):
            out.functions[gv] = conv.convert_function(func)
        return out
