"""Algebraic simplification rewrites.

Cheap peephole rules that matter for dynamic models: identity reshapes /
casts / transposes disappear (dynamic models insert many of these around
shape plumbing), additions of zero / multiplications by one fold away.
This is the "enhanced symbolic expression simplification" partner at the
graph level; the loop-level version lives in the kernel cost model.
"""

from __future__ import annotations

import numpy as np

from repro.ir.expr import Call, Constant, Expr, Function
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.types import TensorType, type_equal
from repro.ir.visitor import ExprMutator
from repro.passes.pass_manager import Pass


def _is_const_scalar(expr: Expr, value: float) -> bool:
    return (
        isinstance(expr, Constant)
        and expr.data.size == 1
        and float(expr.data.reshape(()).item()) == value
    )


class _Simplifier(ExprMutator):
    def __init__(self) -> None:
        super().__init__()
        self.rewrites = 0

    def visit_call(self, call: Call) -> Expr:
        new = super().visit_call(call)
        if not isinstance(new, Call) or not isinstance(new.op, Op):
            return new
        name = new.op.name

        # reshape/cast/transpose that provably do nothing.
        if name == "reshape":
            src_ty = new.args[0].checked_type
            if isinstance(src_ty, TensorType) and src_ty.is_static:
                if tuple(new.attrs["newshape"]) == src_ty.shape:
                    self.rewrites += 1
                    return new.args[0]
        elif name == "cast":
            src_ty = new.args[0].checked_type
            if isinstance(src_ty, TensorType) and new.attrs.get("dtype") == src_ty.dtype:
                self.rewrites += 1
                return new.args[0]
        elif name == "transpose":
            src_ty = new.args[0].checked_type
            axes = new.attrs.get("axes")
            if (
                axes is not None
                and isinstance(src_ty, TensorType)
                and tuple(axes) == tuple(range(src_ty.ndim))
            ):
                self.rewrites += 1
                return new.args[0]

        # x + 0, x - 0, x * 1, x / 1 — when shapes provably match (the
        # identity must not change the broadcast result type).
        elif name in ("add", "subtract", "multiply", "divide"):
            lhs, rhs = new.args
            neutral = 0.0 if name in ("add", "subtract") else 1.0
            if (
                _is_const_scalar(rhs, neutral)
                and lhs.checked_type is not None
                and new.checked_type is not None
                and type_equal(lhs.checked_type, new.checked_type)
            ):
                self.rewrites += 1
                return lhs
            if (
                name == "add"
                and _is_const_scalar(lhs, 0.0)
                and rhs.checked_type is not None
                and new.checked_type is not None
                and type_equal(rhs.checked_type, new.checked_type)
            ):
                self.rewrites += 1
                return rhs
        return new


class SimplifyExpressions(Pass):
    name = "SimplifyExpressions"

    def run(self, mod: IRModule) -> IRModule:
        out = mod.shallow_copy()
        for gv, func in list(out.functions.items()):
            if func.is_primitive:
                continue
            out.functions[gv] = _Simplifier().visit(func)
        return out
