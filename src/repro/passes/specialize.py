"""Shape specialization: bind ``Any`` dims of the entry to concrete values.

Dynamic compilation (Figure 2) pays for generality on every inference:
shape functions run on the host, allocations are sized at runtime, and
symbolic kernels carry residue dispatch. When one input shape dominates —
a hot bucket in the serving layer, or a known deployment shape — that
generality is pure overhead. :class:`SpecializeShapes` removes it at the
type level: every ``Any`` whose identity token is bound gets replaced by
its concrete value throughout the module, and re-running ``InferType``
propagates the static dims through every operator. Downstream the
standard pipeline then does the rest for free — ``ManifestAlloc`` takes
its static path (no shape functions, constant storage sizes), the memory
planner coalesces exact extents, and the code generator emits static
kernels with no residue dispatch.

The pass rebuilds the module with fresh expression nodes (stale
``checked_type`` slots from a previous inference run must not leak into
the specialized typing) while sharing constants, operators, ADT
definitions, and constructors — weights are never copied.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.typing.bind import Binding, bind_any_dims, collect_shape_bindings
from repro.errors import CompilerError
from repro.ir.expr import (
    Call,
    Clause,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    Tuple as IRTuple,
    TupleGetItem,
    Var,
)
from repro.ir.module import IRModule
from repro.ir.types import Any, TensorType, TupleType, Type
from repro.passes.pass_manager import Pass


class _Specializer:
    """Deep-copies a function body, substituting bound ``Any`` dims in
    every type annotation. Every interior node is rebuilt so no
    ``checked_type`` from the dynamic module survives into the
    specialized one."""

    def __init__(self, binding: Binding, gv_map: Dict[GlobalVar, GlobalVar]) -> None:
        self.binding = binding
        self.gv_map = gv_map
        self._memo: Dict[int, Expr] = {}

    def _sub(self, ty: Optional[Type]) -> Optional[Type]:
        return None if ty is None else bind_any_dims(ty, self.binding)

    def visit(self, expr: Expr) -> Expr:
        key = id(expr)
        found = self._memo.get(key)
        if found is not None:
            return found
        result = self._copy(expr)
        self._memo[key] = result
        return result

    def _copy(self, expr: Expr) -> Expr:
        if isinstance(expr, Var):
            return Var(expr.name_hint, self._sub(expr.type_annotation))
        if isinstance(expr, GlobalVar):
            return self.gv_map.get(expr, expr)
        if isinstance(expr, Let):
            # Iterative over the chain (ANF bodies are thousands deep).
            bindings: List[Tuple[Var, Expr]] = []
            node: Expr = expr
            while isinstance(node, Let):
                var = self.visit(node.var)
                if not isinstance(var, Var):
                    raise CompilerError("let binder must remain a Var")
                bindings.append((var, self.visit(node.value)))
                node = node.body
            out = self.visit(node)
            for var, value in reversed(bindings):
                out = Let(var, value, out)
            self._memo[id(expr)] = out
            return out
        if isinstance(expr, Call):
            return Call(
                self.visit(expr.op), [self.visit(a) for a in expr.args], expr.attrs
            )
        if isinstance(expr, Function):
            return Function(
                [self.visit(p) for p in expr.params],
                self.visit(expr.body),
                self._sub(expr.ret_type),
                expr.attrs,
            )
        if isinstance(expr, IRTuple):
            return IRTuple([self.visit(f) for f in expr.fields])
        if isinstance(expr, TupleGetItem):
            return TupleGetItem(self.visit(expr.tuple_value), expr.index)
        if isinstance(expr, If):
            return If(
                self.visit(expr.cond),
                self.visit(expr.true_branch),
                self.visit(expr.false_branch),
            )
        if isinstance(expr, Match):
            return Match(
                self.visit(expr.data),
                [
                    Clause(self._copy_pattern(c.pattern), self.visit(c.rhs))
                    for c in expr.clauses
                ],
                expr.complete,
            )
        # Constants, operators, and constructors are shared: their types
        # are input-independent and constructors are identity-interned.
        return expr

    def _copy_pattern(self, pattern):
        from repro.ir.expr import PatternConstructor, PatternVar

        if isinstance(pattern, PatternVar):
            var = self.visit(pattern.var)
            assert isinstance(var, Var)
            return PatternVar(var)
        if isinstance(pattern, PatternConstructor):
            return PatternConstructor(
                pattern.constructor,
                [self._copy_pattern(p) for p in pattern.patterns],
            )
        return pattern


def _static_param_shapes(func: Function):
    """Per-param shape summary after binding: a tuple of dims (with None
    for still-dynamic dims) for tensor params, nested tuples for tuple
    params, None for ADT/function params."""

    def summarize(ty: Optional[Type]):
        if isinstance(ty, TensorType):
            return tuple(None if isinstance(d, Any) else int(d) for d in ty.shape)
        if isinstance(ty, TupleType):
            return tuple(summarize(f) for f in ty.fields)
        return None

    return tuple(summarize(p.type_annotation) for p in func.params)


class SpecializeShapes(Pass):
    """Bind the entry function's ``Any`` dims and rewrite the module.

    Construct with either ``shapes`` — one concrete shape spec per entry
    parameter (ints for tensor params, nested sequences for tuple params,
    ``None`` to leave a param dynamic) — or a pre-computed ``binding`` of
    ``Any`` identity tokens to values (the serving layer's specialization
    manager derives one from its bucketer). After :meth:`run`,
    ``bound_shapes`` records the entry parameter shapes the module was
    specialized to.
    """

    name = "SpecializeShapes"

    def __init__(
        self,
        shapes: Optional[Sequence] = None,
        binding: Optional[Binding] = None,
        entry: str = "main",
    ) -> None:
        self.shapes = shapes
        self.binding = dict(binding) if binding else {}
        self.entry = entry
        self.bound_shapes = None

    def run(self, mod: IRModule) -> IRModule:
        if self.entry not in mod:
            raise CompilerError(f"module has no entry function {self.entry!r}")
        entry_fn = mod[self.entry]
        binding: Binding = dict(self.binding)
        if self.shapes is not None:
            if len(self.shapes) != len(entry_fn.params):
                raise CompilerError(
                    f"specialize: {len(self.shapes)} shapes for "
                    f"{len(entry_fn.params)} entry parameters"
                )
            for param, spec in zip(entry_fn.params, self.shapes):
                if param.type_annotation is None:
                    raise CompilerError(
                        f"specialize: entry parameter %{param.name_hint} "
                        f"has no type annotation"
                    )
                collect_shape_bindings(
                    param.type_annotation, spec, binding,
                    what=f"specializing %{param.name_hint}",
                )

        out = IRModule()
        # ADTs are shared: constructors and global type vars are
        # identity-interned and their field types carry no entry tokens.
        out.type_data = dict(mod.type_data)
        out._global_type_vars = dict(mod._global_type_vars)
        gv_map = {gv: out.get_global_var(gv.name_hint) for gv in mod.functions}
        rewriter = _Specializer(binding, gv_map)
        for gv, func in mod.functions.items():
            new_func = rewriter.visit(func)
            assert isinstance(new_func, Function)
            out[gv_map[gv]] = new_func
        self.bound_shapes = _static_param_shapes(out[self.entry])
        return out
