"""Shape specialization: bind ``Any`` dims of the entry to concrete values.

Dynamic compilation (Figure 2) pays for generality on every inference:
shape functions run on the host, allocations are sized at runtime, and
symbolic kernels carry residue dispatch. When one input shape dominates —
a hot bucket in the serving layer, or a known deployment shape — that
generality is pure overhead. :class:`SpecializeShapes` removes it at the
type level: every ``Any`` whose identity token is bound gets replaced by
its concrete value throughout the module, and re-running ``InferType``
propagates the static dims through every operator. Downstream the
standard pipeline then does the rest for free — ``ManifestAlloc`` takes
its static path (no shape functions, constant storage sizes), the memory
planner coalesces exact extents, and the code generator emits static
kernels with no residue dispatch.

The pass rebuilds the module with fresh expression nodes (stale
``checked_type`` slots from a previous inference run must not leak into
the specialized typing) while sharing constants, operators, ADT
definitions, and constructors — weights are never copied.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.typing.bind import Binding, batch_type, bind_any_dims, collect_shape_bindings
from repro.errors import CompilerError
from repro.ir.expr import (
    Call,
    Clause,
    Constant,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    Tuple as IRTuple,
    TupleGetItem,
    Var,
)
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.types import Any, TensorType, TupleType, Type, has_any_dim
from repro.passes.pass_manager import Pass


class _Specializer:
    """Deep-copies a function body, substituting bound ``Any`` dims in
    every type annotation. Every interior node is rebuilt so no
    ``checked_type`` from the dynamic module survives into the
    specialized one."""

    def __init__(self, binding: Binding, gv_map: Dict[GlobalVar, GlobalVar]) -> None:
        self.binding = binding
        self.gv_map = gv_map
        self._memo: Dict[int, Expr] = {}

    def _sub(self, ty: Optional[Type]) -> Optional[Type]:
        return None if ty is None else bind_any_dims(ty, self.binding)

    def visit(self, expr: Expr) -> Expr:
        key = id(expr)
        found = self._memo.get(key)
        if found is not None:
            return found
        result = self._copy(expr)
        self._memo[key] = result
        return result

    def _copy(self, expr: Expr) -> Expr:
        if isinstance(expr, Var):
            return Var(expr.name_hint, self._sub(expr.type_annotation))
        if isinstance(expr, GlobalVar):
            return self.gv_map.get(expr, expr)
        if isinstance(expr, Let):
            # Iterative over the chain (ANF bodies are thousands deep).
            bindings: List[Tuple[Var, Expr]] = []
            node: Expr = expr
            while isinstance(node, Let):
                var = self.visit(node.var)
                if not isinstance(var, Var):
                    raise CompilerError("let binder must remain a Var")
                bindings.append((var, self.visit(node.value)))
                node = node.body
            out = self.visit(node)
            for var, value in reversed(bindings):
                out = Let(var, value, out)
            self._memo[id(expr)] = out
            return out
        if isinstance(expr, Call):
            return Call(
                self.visit(expr.op), [self.visit(a) for a in expr.args], expr.attrs
            )
        if isinstance(expr, Function):
            return Function(
                [self.visit(p) for p in expr.params],
                self.visit(expr.body),
                self._sub(expr.ret_type),
                expr.attrs,
            )
        if isinstance(expr, IRTuple):
            return IRTuple([self.visit(f) for f in expr.fields])
        if isinstance(expr, TupleGetItem):
            return TupleGetItem(self.visit(expr.tuple_value), expr.index)
        if isinstance(expr, If):
            return If(
                self.visit(expr.cond),
                self.visit(expr.true_branch),
                self.visit(expr.false_branch),
            )
        if isinstance(expr, Match):
            return Match(
                self.visit(expr.data),
                [
                    Clause(self._copy_pattern(c.pattern), self.visit(c.rhs))
                    for c in expr.clauses
                ],
                expr.complete,
            )
        # Constants, operators, and constructors are shared: their types
        # are input-independent and constructors are identity-interned.
        return expr

    def _copy_pattern(self, pattern):
        from repro.ir.expr import PatternConstructor, PatternVar

        if isinstance(pattern, PatternVar):
            var = self.visit(pattern.var)
            assert isinstance(var, Var)
            return PatternVar(var)
        if isinstance(pattern, PatternConstructor):
            return PatternConstructor(
                pattern.constructor,
                [self._copy_pattern(p) for p in pattern.patterns],
            )
        return pattern


def _summarize_shape(ty: Optional[Type]):
    if isinstance(ty, TensorType):
        return tuple(None if isinstance(d, Any) else int(d) for d in ty.shape)
    if isinstance(ty, TupleType):
        return tuple(_summarize_shape(f) for f in ty.fields)
    return None


def _static_param_shapes(func: Function):
    """Per-param shape summary after binding: a tuple of dims (with None
    for still-dynamic dims) for tensor params, nested tuples for tuple
    params, None for ADT/function params."""
    return tuple(_summarize_shape(p.type_annotation) for p in func.params)


def bound_entry_shapes(func: Function, binding: Binding):
    """The ``specialized_shapes`` marker :class:`SpecializeShapes` would
    stamp for *binding*, computed without running the pass.

    The artifact store keys executables by (module, platform, shape
    binding, batch); the serving layer must derive that key *before*
    deciding whether to compile at all — a store hit replaces the whole
    compile — so this substitutes the binding into the entry's parameter
    annotations only. It is kept in this module, next to
    ``_static_param_shapes``, precisely so the two can never drift: a
    key computed here must match the marker the compiled executable
    carries."""
    return tuple(
        _summarize_shape(
            bind_any_dims(p.type_annotation, binding)
            if p.type_annotation is not None
            else None
        )
        for p in func.params
    )


class SpecializeShapes(Pass):
    """Bind the entry function's ``Any`` dims and rewrite the module.

    Construct with either ``shapes`` — one concrete shape spec per entry
    parameter (ints for tensor params, nested sequences for tuple params,
    ``None`` to leave a param dynamic) — or a pre-computed ``binding`` of
    ``Any`` identity tokens to values (the serving layer's specialization
    manager derives one from its bucketer). After :meth:`run`,
    ``bound_shapes`` records the entry parameter shapes the module was
    specialized to.
    """

    name = "SpecializeShapes"

    def __init__(
        self,
        shapes: Optional[Sequence] = None,
        binding: Optional[Binding] = None,
        entry: str = "main",
    ) -> None:
        self.shapes = shapes
        self.binding = dict(binding) if binding else {}
        self.entry = entry
        self.bound_shapes = None

    def run(self, mod: IRModule) -> IRModule:
        # Reset on entry, not just set on success: ``bound_shapes`` is
        # how callers read the pass result, and a reused instance whose
        # second run raises mid-way must not report the *previous*
        # module's shapes as if they belonged to this one.
        self.bound_shapes = None
        if self.entry not in mod:
            raise CompilerError(f"module has no entry function {self.entry!r}")
        entry_fn = mod[self.entry]
        binding: Binding = dict(self.binding)
        if self.shapes is not None:
            if len(self.shapes) != len(entry_fn.params):
                raise CompilerError(
                    f"specialize: {len(self.shapes)} shapes for "
                    f"{len(entry_fn.params)} entry parameters"
                )
            for param, spec in zip(entry_fn.params, self.shapes):
                if param.type_annotation is None:
                    raise CompilerError(
                        f"specialize: entry parameter %{param.name_hint} "
                        f"has no type annotation"
                    )
                collect_shape_bindings(
                    param.type_annotation, spec, binding,
                    what=f"specializing %{param.name_hint}",
                )

        out = IRModule()
        # ADTs are shared: constructors and global type vars are
        # identity-interned and their field types carry no entry tokens.
        out.type_data = dict(mod.type_data)
        out._global_type_vars = dict(mod._global_type_vars)
        gv_map = {gv: out.get_global_var(gv.name_hint) for gv in mod.functions}
        rewriter = _Specializer(binding, gv_map)
        for gv, func in mod.functions.items():
            new_func = rewriter.visit(func)
            assert isinstance(new_func, Function)
            out[gv_map[gv]] = new_func
        self.bound_shapes = _static_param_shapes(out[self.entry])
        return out


# ---------------------------------------------------------------------------
# Batch-granularity specialization
# ---------------------------------------------------------------------------


class BatchSpecializeError(CompilerError):
    """The module cannot be rewritten at batch granularity (unsupported
    op, ADT/closure entry, residual dynamism). Callers fall back to the
    member-wise static tier."""


# Batchedness of a value: a bool for tensors, a tuple of flags for
# tuple-typed values. True means the rewritten expression holds the axis-0
# concatenation of the `batch` member values; False means one shared value
# (identical for every member).
Flags = Union[bool, Tuple]


def _flags_of(ty: Optional[Type], what: str) -> Flags:
    if isinstance(ty, TensorType):
        return ty.ndim >= 1
    if isinstance(ty, TupleType):
        return tuple(_flags_of(f, what) for f in ty.fields)
    raise BatchSpecializeError(f"{what}: cannot batch a value of type {ty!r}")


def _shared_flags(ty: Optional[Type]) -> Flags:
    if isinstance(ty, TupleType):
        return tuple(_shared_flags(f) for f in ty.fields)
    return False


def _any_batched(flags) -> bool:
    if isinstance(flags, tuple):
        return any(_any_batched(f) for f in flags)
    return flags is True


def _member_type(expr: Expr, what: str) -> Type:
    ty = expr.checked_type
    if ty is None:
        raise BatchSpecializeError(f"{what}: expression is missing a checked type")
    return ty


def _static_shape(ty: Type, what: str) -> Tuple[int, ...]:
    if not isinstance(ty, TensorType) or has_any_dim(ty):
        raise BatchSpecializeError(f"{what}: expected a static tensor, got {ty!r}")
    return tuple(int(d) for d in ty.shape)


class _BatchRewriter:
    """Rebuilds one function at batch granularity.

    The invariant: a batched tensor's flat (C-order) layout equals the
    concatenation of its members' flat layouts, member 0 first. Row-wise
    ops (dense epilogues, elementwise math, last-axis normalizations)
    therefore apply directly to the stacked value; GEMMs become one
    ``nn.batch_dense``; layout ops that would mix members across the
    leading axis are lifted through an explicit ``(batch, *member)``
    reshape. Scalars stay shared — every member of a batch-specialized
    bucket has the same exact shape, so all shape-derived control flow is
    member-independent.
    """

    # Single-arg ops whose output row i depends only on input row i.
    _UNARY_ROWWISE_NAMES = {"nn.relu", "nn.gelu", "clip", "cast"}

    def __init__(
        self,
        batch: int,
        gv_map: Dict[GlobalVar, GlobalVar],
        signatures: Dict[GlobalVar, Tuple[Tuple[Flags, ...], Flags]],
    ) -> None:
        self.batch = batch
        self.gv_map = gv_map
        self.signatures = signatures
        self._memo: Dict[int, Tuple[Expr, Flags]] = {}

    # ------------------------------------------------------------- utilities
    def _promote(self, expr: Expr, member_ty: Type, what: str) -> Expr:
        """Shared → batched: tile the member value along axis 0."""
        if not isinstance(member_ty, TensorType) or member_ty.ndim == 0:
            raise BatchSpecializeError(f"{what}: cannot tile {member_ty!r}")
        return Call(Op.get("concatenate"), [expr] * self.batch, {"axis": 0})

    def _coerce(self, expr: Expr, have: Flags, want: Flags, member_ty: Type, what: str):
        if have == want:
            return expr
        if want is True and have is False:
            return self._promote(expr, member_ty, what)
        if isinstance(want, tuple) and isinstance(member_ty, TupleType):
            have_t = have if isinstance(have, tuple) else (have,) * len(want)
            if isinstance(expr, IRTuple):
                fields = [
                    self._coerce(f, h, w, t, what)
                    for f, h, w, t in zip(expr.fields, have_t, want, member_ty.fields)
                ]
                return IRTuple(fields)
        raise BatchSpecializeError(
            f"{what}: cannot coerce batchedness {have!r} -> {want!r}"
        )

    @staticmethod
    def _broadcast_safe(shared_ty: Type, member_ty: Type) -> bool:
        """May a shared operand broadcast against a *stacked* batched one
        exactly as it would against each member? Yes when it aligns to
        trailing dims only, or its leading dim is 1 (a size-1 dim
        stretches to any extent, so each member row sees the same
        value)."""
        if not isinstance(shared_ty, TensorType):
            return False
        if not isinstance(member_ty, TensorType):
            return False
        if shared_ty.ndim == 0 or shared_ty.ndim < member_ty.ndim:
            return True
        if shared_ty.ndim == member_ty.ndim:
            lead = shared_ty.shape[0]
            return not isinstance(lead, Any) and int(lead) == 1
        return False

    def _reshape(self, expr: Expr, newshape: Tuple[int, ...]) -> Expr:
        return Call(Op.get("reshape"), [expr], {"newshape": tuple(newshape)})

    def _canonical(self, expr: Expr, member_out: Tuple[int, ...]) -> Expr:
        """Reshape a flat-correct result to the canonical stacked shape
        ``(batch * member_out[0], *member_out[1:])``."""
        return self._reshape(
            expr, (self.batch * member_out[0],) + tuple(member_out[1:])
        )

    def _lift(self, data: Expr, member_in: Tuple[int, ...], op: Op, attrs: dict,
              member_out: Tuple[int, ...]) -> Expr:
        """Apply a member-wise op over an explicit leading batch axis:
        reshape ``(B·d0, rest)`` → ``(B, d0, rest)``, run the op with its
        axes shifted past the batch dim, reshape back to canonical form."""
        unstacked = self._reshape(data, (self.batch,) + tuple(member_in))
        applied = Call(op, [unstacked], attrs)
        return self._canonical(applied, member_out)

    # --------------------------------------------------------------- visitor
    def visit(self, expr: Expr) -> Tuple[Expr, Flags]:
        key = id(expr)
        found = self._memo.get(key)
        if found is not None:
            return found
        result = self._rewrite(expr)
        self._memo[key] = result
        return result

    def _rewrite(self, expr: Expr) -> Tuple[Expr, Flags]:
        if isinstance(expr, (Constant, Op)):
            return expr, False
        if isinstance(expr, GlobalVar):
            return self.gv_map.get(expr, expr), False
        if isinstance(expr, Var):
            raise BatchSpecializeError(
                f"batch specialization: free variable %{expr.name_hint}"
            )
        if isinstance(expr, Let):
            bindings: List[Tuple[Var, Expr]] = []
            node: Expr = expr
            while isinstance(node, Let):
                value, flags = self.visit(node.value)
                new_var = Var(node.var.name_hint)
                self._memo[id(node.var)] = (new_var, flags)
                bindings.append((new_var, value))
                node = node.body
            out, out_flags = self.visit(node)
            for var, value in reversed(bindings):
                out = Let(var, value, out)
            return out, out_flags
        if isinstance(expr, IRTuple):
            pairs = [self.visit(f) for f in expr.fields]
            return IRTuple([e for e, _ in pairs]), tuple(f for _, f in pairs)
        if isinstance(expr, TupleGetItem):
            value, flags = self.visit(expr.tuple_value)
            field_flags = (
                flags[expr.index] if isinstance(flags, tuple) else flags
            )
            return TupleGetItem(value, expr.index), field_flags
        if isinstance(expr, If):
            cond, cond_flags = self.visit(expr.cond)
            if cond_flags is not False:
                raise BatchSpecializeError(
                    "batch specialization: member-dependent branch condition"
                )
            true_b, tf = self.visit(expr.true_branch)
            false_b, ff = self.visit(expr.false_branch)
            if tf != ff:
                member = _member_type(expr, "if")
                false_b = self._coerce(false_b, ff, tf, member, "if branch")
            return If(cond, true_b, false_b), tf
        if isinstance(expr, Call):
            return self._rewrite_call(expr)
        if isinstance(expr, (Match, Function)):
            raise BatchSpecializeError(
                f"batch specialization does not support {type(expr).__name__} values"
            )
        raise BatchSpecializeError(
            f"batch specialization: cannot rewrite {type(expr).__name__}"
        )

    # ------------------------------------------------------------------ calls
    def _rewrite_call(self, call: Call) -> Tuple[Expr, Flags]:
        if isinstance(call.op, GlobalVar):
            param_flags, ret_flags = self.signatures[call.op]
            new_args = []
            for arg, want in zip(call.args, param_flags):
                new_arg, have = self.visit(arg)
                member = _member_type(arg, f"call to @{call.op.name_hint}")
                new_args.append(
                    self._coerce(new_arg, have, want, member,
                                 f"call to @{call.op.name_hint}")
                )
            return Call(self.gv_map[call.op], new_args, call.attrs), ret_flags
        if not isinstance(call.op, Op):
            raise BatchSpecializeError(
                "batch specialization: only operator and global calls supported"
            )
        return self._rewrite_op_call(call)

    def _rewrite_op_call(self, call: Call) -> Tuple[Expr, Flags]:
        from repro.ops.registry import OpPattern, get_op_def, has_op
        from repro.ops.shape_funcs import normalize_axis

        name = call.op.name
        B = self.batch
        pairs = [self.visit(a) for a in call.args]
        args = [e for e, _ in pairs]
        flags = [f for _, f in pairs]
        out_ty = _member_type(call, name)

        if not any(_any_batched(f) for f in flags):
            # Every input shared: the op is member-independent and runs
            # once, shared (zeros/ones, scalar arithmetic, shape reads).
            return Call(call.op, args, call.attrs), _shared_flags(out_ty)

        member_tys = [_member_type(a, name) for a in call.args]

        if name == "vm.shape_of":
            # Static module: the member shape is a compile-time constant.
            shape = _static_shape(member_tys[0], name)
            from repro.tensor.ndarray import array as make_array

            return Constant(make_array(np.asarray(shape, dtype=np.int64))), False

        if name == "nn.dense":
            if flags[1] is not False:
                raise BatchSpecializeError("batch_dense: batched weights")
            data_shape = _static_shape(member_tys[0], name)
            if len(data_shape) != 2:
                raise BatchSpecializeError(
                    f"batch_dense: rank-{len(data_shape)} dense data"
                )
            return (
                Call(Op.get("nn.batch_dense"), [args[0], args[1]], {"batch": B}),
                True,
            )

        if name == "nn.batch_matmul":
            coerced = [
                self._coerce(a, f, True, t, name)
                for a, f, t in zip(args, flags, member_tys)
            ]
            return Call(call.op, coerced, call.attrs), True

        if name == "nn.bias_add":
            if flags[1] is not False:
                raise BatchSpecializeError("bias_add: batched bias")
            ndim = member_tys[0].ndim
            axis = normalize_axis(call.attrs.get("axis", -1), ndim)
            if axis == 0:
                raise BatchSpecializeError("bias_add along the stacked axis")
            return Call(call.op, args, call.attrs), True

        if name in ("nn.softmax", "nn.log_softmax"):
            ndim = member_tys[0].ndim
            axis = normalize_axis(call.attrs.get("axis", -1), ndim)
            if ndim >= 2 and axis != 0:
                return Call(call.op, args, call.attrs), True
            member_in = _static_shape(member_tys[0], name)
            member_out = _static_shape(out_ty, name)
            return (
                self._lift(args[0], member_in, call.op, {"axis": axis + 1},
                           member_out),
                True,
            )

        if name == "nn.layer_norm":
            if flags[1] is not False or flags[2] is not False:
                raise BatchSpecializeError("layer_norm: batched gamma/beta")
            ndim = member_tys[0].ndim
            axis = normalize_axis(call.attrs.get("axis", -1), ndim)
            if axis == 0:
                raise BatchSpecializeError("layer_norm along the stacked axis")
            return Call(call.op, args, call.attrs), True

        if name == "reshape":
            member_out = _static_shape(out_ty, name)
            if not member_out:
                raise BatchSpecializeError("reshape to a member scalar")
            return self._canonical(args[0], member_out), True

        if name == "transpose":
            member_in = _static_shape(member_tys[0], name)
            member_out = _static_shape(out_ty, name)
            axes = call.attrs.get("axes")
            if axes is None:
                axes = tuple(reversed(range(len(member_in))))
            lifted = {"axes": (0,) + tuple(a + 1 for a in axes)}
            return (
                self._lift(args[0], member_in, call.op, lifted, member_out),
                True,
            )

        if name == "take":
            return self._rewrite_take(call, args, flags, member_tys, out_ty)

        if name == "concatenate":
            axis = normalize_axis(
                call.attrs.get("axis", 0), member_tys[0].ndim
            )
            if axis == 0:
                raise BatchSpecializeError("concatenate along the stacked axis")
            leads = set()
            coerced = []
            for a, f, t in zip(args, flags, member_tys):
                coerced.append(self._coerce(a, f, True, t, name))
                leads.add(_static_shape(t, name)[0])
            if len(leads) != 1:
                raise BatchSpecializeError(
                    "concatenate: members with unequal leading dims"
                )
            return Call(call.op, coerced, call.attrs), True

        if name == "split":
            axis = normalize_axis(
                call.attrs.get("axis", 0), member_tys[0].ndim
            )
            if axis == 0:
                raise BatchSpecializeError("split along the stacked axis")
            return Call(call.op, args, call.attrs), _flags_of(out_ty, name)

        if has_op(name):
            op_def = get_op_def(name)
            rowwise = (
                op_def.pattern in (OpPattern.ELEMWISE, OpPattern.BROADCAST)
                or name in self._UNARY_ROWWISE_NAMES
            )
            if rowwise:
                return self._rewrite_elemwise(call, args, flags, member_tys)

        raise BatchSpecializeError(
            f"batch specialization does not support operator {name!r}"
        )

    def _rewrite_elemwise(self, call, args, flags, member_tys) -> Tuple[Expr, Flags]:
        """N-ary row-wise op: batched operands must agree on member shape
        (their stacked row blocks then align member-by-member); shared
        operands either broadcast safely against the stacked value or are
        tiled."""
        name = call.op.name
        batched_shapes = {
            _static_shape(t, name)
            for t, f in zip(member_tys, flags)
            if f is True and isinstance(t, TensorType) and t.ndim >= 1
        }
        if len(batched_shapes) > 1:
            raise BatchSpecializeError(
                f"{name}: batched operands with unequal member shapes "
                f"{sorted(batched_shapes)}"
            )
        member = next(iter(batched_shapes), None)
        out_args = []
        for a, f, t in zip(args, flags, member_tys):
            shared_ok = f is False and (
                member is None
                or self._broadcast_safe(t, TensorType(member, "float32"))
            )
            if f is True or shared_ok:
                out_args.append(a)
                continue
            # A shared operand that is not broadcast-safe can only be
            # tiled when its leading dim equals the batched member's —
            # i.e. member-wise the op does NOT broadcast along axis 0. A
            # lead that broadcasts the members *up* (shared (4, H) against
            # member (1, H)) has no stacked equivalent: tiling would emit
            # an ill-typed op, so refuse and let callers fall back.
            shape = (
                _static_shape(t, name) if isinstance(t, TensorType) else None
            )
            if (
                f is False
                and shape is not None
                and member is not None
                and len(shape) == len(member)
                and shape[0] == member[0]
            ):
                out_args.append(self._coerce(a, f, True, t, name))
            else:
                raise BatchSpecializeError(
                    f"{name}: shared operand of shape {shape} would "
                    f"broadcast members of shape {member} along the "
                    f"stacked axis"
                )
        return Call(call.op, out_args, call.attrs), True

    def _rewrite_take(self, call, args, flags, member_tys, out_ty) -> Tuple[Expr, Flags]:
        from repro.ops.shape_funcs import normalize_axis
        from repro.tensor.ndarray import array as make_array

        data_f, idx_f = flags
        axis = call.attrs.get("axis")
        if data_f is False and idx_f is not False:
            # Gather from a shared table with stacked indices (embedding
            # lookup): member-wise by construction for axis-0/flat gathers.
            if axis is None or normalize_axis(axis, member_tys[0].ndim) == 0:
                return Call(call.op, args, call.attrs), True
            raise BatchSpecializeError("take: stacked indices on an inner axis")
        if data_f is not True:
            raise BatchSpecializeError("take: unsupported operand batching")
        if axis is None:
            raise BatchSpecializeError("take: flat gather from a batched value")
        data_shape = _static_shape(member_tys[0], "take")
        axis = normalize_axis(axis, len(data_shape))
        if axis != 0:
            if idx_f is not False:
                raise BatchSpecializeError("take: batched indices on an inner axis")
            return Call(call.op, args, call.attrs), True
        if idx_f is not False or member_tys[1].ndim != 0:
            raise BatchSpecializeError("take: unsupported axis-0 index shape")
        member_out = _static_shape(out_ty, "take")
        if not member_out:
            raise BatchSpecializeError("take: member-scalar gather")
        # Row r of each member is row r + i*member_rows of the stack:
        # gather every member's row in one kernel with offset indices. A
        # negative index wraps within the *member* (take's own
        # convention), so it must be normalized before the offsets are
        # added — raw `i*rows + (-1)` would wrap within the whole stack
        # and hand member i another member's row. The normalization folds
        # to a constant for constant indices.
        lead = np.int64(data_shape[0])
        zero = Constant(make_array(np.int64(0)))
        wrapped = Call(
            Op.get("add"), [args[1], Constant(make_array(lead))], None
        )
        is_negative = Call(Op.get("less"), [args[1], zero], None)
        normalized = Call(
            Op.get("where"), [is_negative, wrapped, args[1]], None
        )
        offsets = Constant(
            make_array(np.arange(self.batch, dtype=np.int64) * lead)
        )
        indices = Call(Op.get("add"), [offsets, normalized], None)
        gathered = Call(call.op, [args[0], indices], {"axis": 0})
        return self._canonical(gathered, member_out), True


class SpecializeBatch(Pass):
    """Rewrite a fully static module to run ``batch`` identical-shape
    members in one execution (§"batch-granularity specialized kernels").

    The entry signature is stacked along a new leading-dim binding
    (:func:`repro.core.typing.bind.batch_type`): every rank≥1 tensor
    parameter of member shape ``(d0, rest...)`` becomes
    ``(batch·d0, rest...)``, holding the axis-0 concatenation of the
    members. GEMMs compile to one ``nn.batch_dense`` / stacked
    ``nn.batch_matmul`` per site — the batched-GEMM amortization.

    **The bit-identity invariant.** The serving layer routes one request
    stream across three tiers (dynamic / member-specialized /
    batch-specialized) and promises the tier is unobservable in the
    outputs, so the rewrite must be bit-exact, not merely numerically
    close. Two rules enforce that:

    1. *Member-sliced reference numerics.* BLAS GEMM is not row-stable
       across M — stacking B members into one ``(B·L, K) @ (K, N)`` call
       can flip last bits vs. B separate ``(L, K)`` calls — so
       ``nn.batch_dense`` is **priced** as a single batched launch (that
       is the whole throughput win) while its reference numerics slice
       the stacked input back into members and run exactly the
       member-wise computation (see ``ops/nn._batch_dense_compute``).
       Bit-identity with the member tiers then holds by construction.
    2. *No cross-member mixing.* Every rewritten op must map member i's
       rows to member i's rows: row-wise ops apply to the stacked value
       directly, layout ops that would mix members across the leading
       axis are lifted over an explicit ``(batch, *member)`` reshape,
       axis-0 gathers get per-member offset indices (with negative
       indices normalized *within* the member before offsetting), and
       scalars stay shared — all members of a batch-specialized bucket
       have the same exact shape, so shape-derived control flow is
       member-independent. Anything that cannot satisfy the rule raises
       rather than approximates.

    Raises :class:`BatchSpecializeError` on modules it cannot batch
    (ADT/control structures over member-dependent data, unsupported
    layout ops); the serving layer treats that as "member-wise tiers
    only". ``tests/test_differential.py`` fuzzes the invariant: all
    three tiers bitwise-equal over randomized shapes, batches, seeds.
    """

    name = "SpecializeBatch"

    def __init__(self, batch: int, entry: str = "main") -> None:
        if batch < 1:
            raise CompilerError(f"batch must be >= 1, got {batch}")
        self.batch = batch
        self.entry = entry
        self.batched_shapes = None

    def run(self, mod: IRModule) -> IRModule:
        from repro.core.typing import infer_types
        from repro.errors import TypeInferenceError

        # Same stale-state hazard as SpecializeShapes.bound_shapes: a
        # reused instance that raises mid-run (batch rewrites refuse
        # plenty of modules) must not keep the previous run's result.
        self.batched_shapes = None
        if self.entry not in mod:
            raise CompilerError(f"module has no entry function {self.entry!r}")
        if self.batch == 1:
            return mod
        typed = infer_types(mod)
        entry_fn = typed[self.entry]

        def has_scalar_leaf(ty: Optional[Type]) -> bool:
            if isinstance(ty, TensorType):
                return ty.ndim == 0
            if isinstance(ty, TupleType):
                return any(has_scalar_leaf(f) for f in ty.fields)
            return False

        for param in entry_fn.params:
            ty = param.checked_type
            if ty is None or has_any_dim(ty):
                raise BatchSpecializeError(
                    f"batch specialization requires a fully static entry; "
                    f"%{param.name_hint}: {ty!r}"
                )
            # Rank-0 *entry* params carry per-member data but have no axis
            # to stack along — treating them as shared would silently feed
            # member 0's value to every member. (Rank-0 params of inner
            # functions are fine: they are derived from shared state.)
            if has_scalar_leaf(ty):
                raise BatchSpecializeError(
                    f"batch specialization: entry parameter "
                    f"%{param.name_hint} is rank-0 ({ty!r}) — per-member "
                    f"scalars cannot stack"
                )
        # The entry's outputs must stack too: a rank-0 output leaf has no
        # axis for the caller to split back into members, so it would
        # compile fine and then crash the serving worker at run time.
        entry_ret = entry_fn.ret_type
        if entry_ret is None or has_any_dim(entry_ret):
            entry_ret = entry_fn.body.checked_type
        if has_scalar_leaf(entry_ret):
            raise BatchSpecializeError(
                f"batch specialization: entry output contains a rank-0 "
                f"leaf ({entry_ret!r}) — per-member scalars cannot split"
            )

        out = IRModule()
        out.type_data = dict(typed.type_data)
        out._global_type_vars = dict(typed._global_type_vars)
        gv_map = {gv: out.get_global_var(gv.name_hint) for gv in typed.functions}

        # First pass: batched signatures (param/return flags and stacked
        # annotations) for every function, so recursive calls line up.
        signatures: Dict[GlobalVar, Tuple[Tuple[Flags, ...], Flags]] = {}
        stacked_params: Dict[GlobalVar, List[Var]] = {}
        stacked_rets: Dict[GlobalVar, Type] = {}
        for gv, func in typed.functions.items():
            flags = []
            params = []
            for p in func.params:
                ty = p.checked_type or p.type_annotation
                what = f"@{gv.name_hint} parameter %{p.name_hint}"
                if ty is None or has_any_dim(ty):
                    raise BatchSpecializeError(f"{what}: not statically typed")
                flags.append(_flags_of(ty, what))
                try:
                    params.append(Var(p.name_hint, batch_type(ty, self.batch, what)))
                except TypeInferenceError as err:
                    raise BatchSpecializeError(str(err)) from None
            # Builders may declare the return with a *fresh* Any token the
            # shape binding never touches; the inferred body type is the
            # authoritative (static) one.
            ret_ty = func.ret_type
            if ret_ty is None or has_any_dim(ret_ty):
                ret_ty = func.body.checked_type
            what = f"@{gv.name_hint} return"
            if ret_ty is None or has_any_dim(ret_ty):
                raise BatchSpecializeError(f"{what}: not statically typed")
            try:
                stacked_rets[gv] = batch_type(ret_ty, self.batch, what)
            except TypeInferenceError as err:
                raise BatchSpecializeError(str(err)) from None
            signatures[gv] = (tuple(flags), _flags_of(ret_ty, what))
            stacked_params[gv] = params

        for gv, func in typed.functions.items():
            rewriter = _BatchRewriter(self.batch, gv_map, signatures)
            for i, (p, new_p) in enumerate(zip(func.params, stacked_params[gv])):
                rewriter._memo[id(p)] = (new_p, signatures[gv][0][i])
            body, body_flags = rewriter.visit(func.body)
            want = signatures[gv][1]
            if body_flags != want:
                ret_member = func.body.checked_type
                body = rewriter._coerce(
                    body, body_flags, want, ret_member, f"@{gv.name_hint} return"
                )
            out[gv_map[gv]] = Function(
                stacked_params[gv], body, stacked_rets[gv], func.attrs
            )
        self.batched_shapes = _static_param_shapes(out[self.entry])
        return out
