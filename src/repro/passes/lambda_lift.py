"""Lambda lifting: nested function literals become global functions +
closure allocations.

The VM ISA has ``AllocClosure`` / ``InvokeClosure`` (Appendix A); this pass
produces the IR they lower from. Every non-primitive function literal is
hoisted to a module-level function whose parameter list is extended with
its captured free variables; the literal's occurrence is replaced by the
dialect call

    vm.alloc_closure(@lifted, %captured...)

which the VM compiler turns into ``AllocClosure`` (the interpreter appends
the captured registers after the call arguments, matching the lifted
signature).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import TypeInferenceError
from repro.ir.analysis import free_vars
from repro.ir.expr import Call, Expr, Function, Var
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.types import FuncType, Type
from repro.ir.visitor import ExprMutator
from repro.ops.registry import OpDef, OpPattern, register_op
from repro.passes.pass_manager import Pass
from repro.utils.naming import NameSupply


def _alloc_closure_rel(arg_types, attrs) -> Type:
    """Result: the un-captured prefix of the lifted function's type."""
    fty = arg_types[0]
    if not isinstance(fty, FuncType):
        raise TypeInferenceError("alloc_closure expects a function first argument")
    num_captured = attrs.get("num_captured", 0)
    arity = len(fty.arg_types) - num_captured
    if arity < 0:
        raise TypeInferenceError("alloc_closure captured more params than exist")
    return FuncType(fty.arg_types[:arity], fty.ret_type)


register_op(
    OpDef(
        name="vm.alloc_closure",
        type_rel=_alloc_closure_rel,
        compute=lambda inputs, attrs: (_ for _ in ()).throw(
            RuntimeError("vm.alloc_closure is interpreted by the VM")
        ),
        pattern=OpPattern.OPAQUE,
    )
)


class _Lifter(ExprMutator):
    def __init__(self, mod: IRModule, names: NameSupply) -> None:
        super().__init__()
        self.mod = mod
        self.names = names

    def visit_function(self, func: Function) -> Expr:
        if func.is_primitive:
            return func
        new_body = self.visit(func.body)
        lifted_inner = (
            func if new_body is func.body else Function(func.params, new_body, func.ret_type, func.attrs)
        )
        captured = free_vars(lifted_inner)
        # Captured vars become trailing parameters of the lifted function;
        # fresh annotated binders keep the unique-binder convention and
        # give InferType the annotations it needs.
        fresh: List[Var] = []
        mapping: Dict[Var, Var] = {}
        for cap in captured:
            ty = cap.checked_type or cap.type_annotation
            if ty is None:
                raise TypeInferenceError(
                    f"LambdaLift needs a typed module (captured %{cap.name_hint})"
                )
            param = Var(cap.name_hint, ty)
            fresh.append(param)
            mapping[cap] = param
        body = _substitute_vars(lifted_inner.body, mapping)
        gv = self.mod.get_global_var(self.names.fresh("lifted"))
        self.mod[gv] = Function(
            list(lifted_inner.params) + fresh,
            body,
            lifted_inner.ret_type,
            lifted_inner.attrs,
        )
        return Call(
            Op.get("vm.alloc_closure"),
            [gv] + list(captured),
            {"num_captured": len(captured)},
        )


def _substitute_vars(expr: Expr, mapping: Dict[Var, Var]) -> Expr:
    if not mapping:
        return expr

    class _Subst(ExprMutator):
        def visit_var(self, var: Var) -> Expr:
            return mapping.get(var, var)

    return _Subst().visit(expr)


class LambdaLift(Pass):
    name = "LambdaLift"

    def run(self, mod: IRModule) -> IRModule:
        out = mod.shallow_copy()
        names = NameSupply()
        for gv, func in list(out.functions.items()):
            if func.is_primitive:
                continue
            lifter = _Lifter(out, names)
            # Lift literals *inside* the body only — the top-level function
            # itself stays where it is.
            new_body = lifter.visit(func.body)
            if new_body is not func.body:
                out.functions[gv] = Function(func.params, new_body, func.ret_type, func.attrs)
        return out
