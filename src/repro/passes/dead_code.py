"""Dead code elimination for ANF programs.

Removes ``let`` bindings whose variable is never used, as long as the
bound value is pure (dialect memory/VM ops have effects and are kept).
Runs to a fixed point over each chain — removing one binding can make an
earlier one dead.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.analysis import iter_nodes
from repro.ir.expr import Call, Expr, Function, If, Let, Match, Clause, Var
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.visitor import ExprMutator
from repro.passes.pass_manager import Pass

_EFFECTFUL = {"memory.kill", "vm.invoke_mut"}


def _is_pure(value: Expr) -> bool:
    if isinstance(value, Call) and isinstance(value.op, Op):
        return value.op.name not in _EFFECTFUL
    return True


def _count_uses(expr: Expr) -> Dict[Var, int]:
    # Var nodes reached through child traversal are uses only — binding
    # positions (let binders, params, pattern vars) are not children.
    # iter_nodes deduplicates by object id, which is fine: we only need
    # used-at-least-once vs. never-used.
    uses: Dict[Var, int] = {}
    for node in iter_nodes(expr):
        if isinstance(node, Var):
            uses[node] = uses.get(node, 0) + 1
    return uses


class _DCE(ExprMutator):
    def __init__(self, uses: Dict[Var, int]) -> None:
        super().__init__()
        self.uses = uses
        self.removed = 0

    def visit_let(self, let: Let) -> Expr:
        bindings = []
        node: Expr = let
        while isinstance(node, Let) and id(node) not in self.memo:
            bindings.append(node)
            node = node.body
        new_body = self.visit(node)
        for orig in reversed(bindings):
            if self.uses.get(orig.var, 0) == 0 and _is_pure(orig.value):
                self.removed += 1
                new_let = new_body  # drop the binding entirely
            else:
                new_value = self.visit(orig.value)
                if new_value is orig.value and new_body is orig.body:
                    new_let = orig
                else:
                    new_let = Let(orig.var, new_value, new_body)
            self.memo[id(orig)] = new_let
            new_body = new_let
        return new_body


def eliminate_dead_code(func: Function) -> Function:
    """Iterate DCE to a fixed point on one function."""
    current = func
    while True:
        uses = _count_uses(current.body)
        dce = _DCE(uses)
        new_body = dce.visit(current.body)
        if dce.removed == 0:
            return current if new_body is current.body else Function(
                current.params, new_body, current.ret_type, current.attrs
            )
        current = Function(current.params, new_body, current.ret_type, current.attrs)


class DeadCodeElimination(Pass):
    name = "DeadCodeElimination"

    def run(self, mod: IRModule) -> IRModule:
        out = mod.shallow_copy()
        for gv, func in list(out.functions.items()):
            if func.is_primitive:
                continue
            out.functions[gv] = eliminate_dead_code(func)
        return out
