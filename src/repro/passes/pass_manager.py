"""Pass infrastructure.

A pass is a callable ``IRModule -> IRModule`` with a ``name``. The
:class:`Sequential` combinator runs a pipeline, optionally re-running type
inference between passes (most passes rely on ``checked_type``) and
recording per-pass timing for the compile-time report.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.ir.module import IRModule


class Pass:
    """Base class; subclasses implement ``run(mod)``."""

    name = "Pass"

    def run(self, mod: IRModule) -> IRModule:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, mod: IRModule) -> IRModule:
        return self.run(mod)


class _FunctionPass(Pass):
    """Lifts a per-function rewrite to a module pass, skipping primitive
    (fused) functions, which are opaque kernel bodies."""

    def __init__(self, fn: Callable, name: str, skip_primitive: bool = True) -> None:
        self._fn = fn
        self.name = name
        self._skip_primitive = skip_primitive

    def run(self, mod: IRModule) -> IRModule:
        out = mod.shallow_copy()
        for gv, func in list(out.functions.items()):
            if self._skip_primitive and func.is_primitive:
                continue
            out.functions[gv] = self._fn(func, out)
        return out


def function_pass(name: str, skip_primitive: bool = True):
    """Decorator: ``@function_pass("MyPass")`` over ``fn(func, mod) -> func``."""

    def wrap(fn: Callable) -> _FunctionPass:
        return _FunctionPass(fn, name, skip_primitive)

    return wrap


class Sequential(Pass):
    """Run passes in order; optionally interleave type inference."""

    name = "Sequential"

    def __init__(
        self,
        passes: Sequence[Callable[[IRModule], IRModule]],
        reinfer_types: bool = True,
        verify_each_pass: bool = False,
    ) -> None:
        self.passes = list(passes)
        self.reinfer_types = reinfer_types
        # Debug mode: run the IR well-formedness lint
        # (repro.analysis.lint) after every pass and raise
        # VerificationError naming the offending pass — "pass X produced
        # ill-formed IR" instead of a miscompile three passes later.
        self.verify_each_pass = verify_each_pass
        self.timings: Dict[str, float] = {}

    def run(self, mod: IRModule) -> IRModule:
        from repro.core.typing import infer_types

        for p in self.passes:
            name = getattr(p, "name", getattr(p, "__name__", repr(p)))
            start = time.perf_counter()
            mod = p(mod)
            if self.reinfer_types:
                mod = infer_types(mod)
            self.timings[name] = self.timings.get(name, 0.0) + time.perf_counter() - start
            if self.verify_each_pass:
                self._verify(mod, name)
        return mod

    def _verify(self, mod: IRModule, pass_name: str) -> None:
        from repro.analysis.lint import lint_module
        from repro.errors import VerificationError

        errors = [
            f
            for f in lint_module(mod, typed=self.reinfer_types)
            if f.severity == "error"
        ]
        if errors:
            raise VerificationError(errors, context=f"after pass {pass_name}")
