"""Common sub-expression elimination on ANF.

Within one let-scope, bindings whose values are structurally equal compute
the same thing (all non-dialect ops are pure), so later duplicates are
replaced by the first variable. Scopes are processed independently —
nothing is hoisted across ``if``/``match`` boundaries.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.analysis import structural_equal, structural_hash
from repro.ir.expr import Call, Expr, Function, If, Let, Match, Clause, Var
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.visitor import ExprMutator
from repro.passes.pass_manager import Pass

_IMPURE = {
    "memory.alloc_storage",
    "memory.alloc_tensor",
    "memory.kill",
    "vm.invoke_mut",
}


def _cse_eligible(value: Expr) -> bool:
    if isinstance(value, (If, Match, Function)):
        return False
    if isinstance(value, Call):
        if not isinstance(value.op, Op):
            return False  # function calls may recurse / close over state
        return value.op.name not in _IMPURE
    return True


class _CSE(ExprMutator):
    def __init__(self) -> None:
        super().__init__()
        self.replaced = 0

    def visit_let(self, let: Let) -> Expr:
        # One scope = one maximal let-chain.
        seen: Dict[int, List] = {}
        bindings = []
        node: Expr = let
        while isinstance(node, Let) and id(node) not in self.memo:
            value = self.visit(node.value)
            replacement = None
            if _cse_eligible(value):
                key = structural_hash(value)
                for prior_value, prior_var in seen.get(key, ()):
                    if structural_equal(prior_value, value):
                        replacement = prior_var
                        break
                if replacement is None:
                    seen.setdefault(key, []).append((value, node.var))
            if replacement is not None:
                self.memo[id(node.var)] = replacement
                self.replaced += 1
                bindings.append((node, None, None))  # dropped
            else:
                bindings.append((node, node.var, value))
            node = node.body
        new_body = self.visit(node)
        for orig, var, value in reversed(bindings):
            if var is None:
                self.memo[id(orig)] = new_body
                continue
            if value is orig.value and new_body is orig.body:
                new_let = orig
            else:
                new_let = Let(var, value, new_body)
            self.memo[id(orig)] = new_let
            new_body = new_let
        return new_body


class CommonSubexprElimination(Pass):
    name = "CommonSubexprElimination"

    def run(self, mod: IRModule) -> IRModule:
        out = mod.shallow_copy()
        for gv, func in list(out.functions.items()):
            if func.is_primitive:
                continue
            out.functions[gv] = _CSE().visit(func)
        return out
