"""Compiler passes: generic rewrites + the dynamic-model pipeline stages."""

from repro.passes.pass_manager import Pass, Sequential, function_pass
from repro.passes.to_anf import ToANF, to_anf
from repro.passes.fold_constant import FoldConstant
from repro.passes.dead_code import DeadCodeElimination
from repro.passes.cse import CommonSubexprElimination
from repro.passes.simplify import SimplifyExpressions
from repro.passes.fuse_ops import FuseOps
from repro.passes.lambda_lift import LambdaLift
from repro.passes.specialize import (
    BatchSpecializeError,
    SpecializeBatch,
    SpecializeShapes,
    bound_entry_shapes,
)

__all__ = [
    "BatchSpecializeError",
    "SpecializeBatch",
    "bound_entry_shapes",
    "Pass",
    "Sequential",
    "function_pass",
    "ToANF",
    "to_anf",
    "FoldConstant",
    "DeadCodeElimination",
    "CommonSubexprElimination",
    "SimplifyExpressions",
    "FuseOps",
    "LambdaLift",
    "SpecializeShapes",
]
