"""Constant folding.

Operator calls whose arguments are all constants are evaluated at compile
time with the registered NumPy computes. Dialect ops are never folded
(they have runtime effects); multi-output ops fold to a tuple of
constants. This also folds data-dependent dynamic ops like ``arange`` when
their inputs are constant — turning a dynamic shape back into a static
one, which is one of the cheapest ways to recover shape specialization.
"""

from __future__ import annotations

import numpy as np

from repro.ir.expr import Call, Constant, Expr, Tuple, TupleGetItem
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.visitor import ExprMutator
from repro.ops import DIALECT_OPS, get_op_def
from repro.passes.pass_manager import Pass
from repro.tensor.ndarray import array as make_array


class _Folder(ExprMutator):
    def visit_call(self, call: Call) -> Expr:
        new_call = super().visit_call(call)
        if not isinstance(new_call, Call) or not isinstance(new_call.op, Op):
            return new_call
        name = new_call.op.name
        if name in DIALECT_OPS:
            return new_call
        if not all(isinstance(a, Constant) for a in new_call.args):
            return new_call
        op_def = get_op_def(name)
        # `zeros`/`ones`/`full` have no args and fold unconditionally.
        inputs = [a.data for a in new_call.args]  # type: ignore[union-attr]
        try:
            result = op_def.compute(inputs, new_call.attrs)
        except Exception:
            return new_call  # leave anything non-evaluable for runtime
        if op_def.returns_shape:
            # Upper-bound ops: slice to the actual shape at fold time.
            data, actual = result
            index = tuple(slice(0, int(d)) for d in np.asarray(actual))
            return Constant(make_array(np.ascontiguousarray(data[index])))
        if isinstance(result, tuple):
            return Tuple([Constant(make_array(r)) for r in result])
        return Constant(make_array(result))

    def visit_tuplegetitem(self, tgi: TupleGetItem) -> Expr:
        new = super().visit_tuplegetitem(tgi)
        if isinstance(new, TupleGetItem) and isinstance(new.tuple_value, Tuple):
            return new.tuple_value.fields[new.index]
        return new


class FoldConstant(Pass):
    name = "FoldConstant"

    def run(self, mod: IRModule) -> IRModule:
        out = mod.shallow_copy()
        for gv, func in list(out.functions.items()):
            if func.is_primitive:
                continue
            out.functions[gv] = _Folder().visit(func)
        return out
