"""Operator fusion with the dynamic-shape-aware policy (§4.2).

Runs on strict-ANF, type-checked functions. Each maximal let-chain is
treated as a dataflow graph; producer bindings are greedily merged into
their single consumer when the fusion patterns allow it:

* ELEMWISE/BROADCAST consumers absorb any producer up to
  OUT_ELEMWISE_FUSABLE (the classic dense/conv + epilogue fusion);
* INJECTIVE consumers absorb injective producers;
* COMM_REDUCE consumers absorb injective producers;
* OPAQUE never fuses.

**Dynamic policy** (the paper's addition): an operator whose shape
function is data-dependent or upper-bound can never absorb producers —
its shape function would need access to intermediate values of the fused
group. Such ops always compile as singleton kernels.

After grouping, every group (including singletons — uniform lowering)
becomes a ``primitive`` Function called with its external inputs, exactly
how Relay marks post-fusion kernels; code generation consumes these.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple as PyTuple

from repro.errors import CompilerError
from repro.ir.analysis import iter_nodes
from repro.ir.expr import (
    Call,
    Clause,
    Constant,
    Expr,
    Function,
    If,
    Let,
    Match,
    Tuple,
    TupleGetItem,
    Var,
)
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.types import Type
from repro.ops import DIALECT_OPS, get_op_def
from repro.ops.registry import OpPattern
from repro.passes.pass_manager import Pass
from repro.utils.naming import NameSupply


def _fusable_call(value: Expr) -> bool:
    return (
        isinstance(value, Call)
        and isinstance(value.op, Op)
        and value.op.name not in DIALECT_OPS
        and get_op_def(value.op.name).pattern != OpPattern.OPAQUE
    )


def _wrappable_call(value: Expr) -> bool:
    """Calls that become (possibly singleton) primitive kernels."""
    return (
        isinstance(value, Call)
        and isinstance(value.op, Op)
        and value.op.name not in DIALECT_OPS
    )


def _can_fuse(producer_pattern: OpPattern, consumer_op: Op) -> bool:
    op_def = get_op_def(consumer_op.name)
    if op_def.is_dynamic_shape_func:
        return False  # the paper's dynamic fusion policy
    consumer_pattern = op_def.pattern
    if consumer_pattern in (OpPattern.ELEMWISE, OpPattern.BROADCAST):
        return producer_pattern <= OpPattern.OUT_ELEMWISE_FUSABLE
    if consumer_pattern == OpPattern.INJECTIVE:
        return producer_pattern <= OpPattern.INJECTIVE
    if consumer_pattern == OpPattern.COMM_REDUCE:
        return producer_pattern <= OpPattern.INJECTIVE
    return False


class _Group:
    """A set of binding indices being fused together."""

    __slots__ = ("indices", "pattern")

    def __init__(self, index: int, pattern: OpPattern) -> None:
        self.indices: List[int] = [index]
        self.pattern = pattern


class _Fuser:
    def __init__(self) -> None:
        self.names = NameSupply()
        self.num_groups = 0
        self.num_fused_ops = 0

    # -- recursive scope handling -------------------------------------------
    def fuse_expr(self, expr: Expr) -> Expr:
        if isinstance(expr, Let):
            return self.fuse_chain(expr)
        return expr  # atoms (strict ANF scope results)

    def _rewrite_value(self, value: Expr) -> Expr:
        """Rewrite nested scopes inside a bound value."""
        if isinstance(value, If):
            return If(
                value.cond,
                self.fuse_expr(value.true_branch),
                self.fuse_expr(value.false_branch),
            )
        if isinstance(value, Match):
            return Match(
                value.data,
                [Clause(c.pattern, self.fuse_expr(c.rhs)) for c in value.clauses],
                value.complete,
            )
        if isinstance(value, Function) and not value.is_primitive:
            return Function(
                value.params, self.fuse_expr(value.body), value.ret_type, value.attrs
            )
        return value

    # -- per-chain fusion ------------------------------------------------------
    def fuse_chain(self, head: Let) -> Expr:
        bindings: List[PyTuple[Var, Expr]] = []
        node: Expr = head
        while isinstance(node, Let):
            bindings.append((node.var, self._rewrite_value(node.value)))
            node = node.body
        tail = node

        # Exact use counts: chain vars can only be used inside this chain
        # (values incl. nested scopes) and its tail.
        uses: Dict[Var, int] = {}
        scan_roots: List[Expr] = [v for _, v in bindings] + [tail]
        for root in scan_roots:
            for sub in iter_nodes(root):
                if isinstance(sub, Var):
                    uses[sub] = uses.get(sub, 0) + 1

        index_of: Dict[Var, int] = {var: i for i, (var, _) in enumerate(bindings)}
        groups: Dict[int, _Group] = {}
        group_of: Dict[int, int] = {}

        for i, (var, value) in enumerate(bindings):
            if not _fusable_call(value):
                continue
            op_def = get_op_def(value.op.name)  # type: ignore[union-attr]
            groups[i] = _Group(i, op_def.pattern)
            group_of[i] = i
            if op_def.is_dynamic_shape_func:
                continue  # never absorbs producers
            for arg in value.args:  # type: ignore[union-attr]
                if not isinstance(arg, Var):
                    continue
                j = index_of.get(arg)
                if j is None or j not in group_of:
                    continue
                if uses.get(arg, 0) != 1:
                    continue  # producer value needed elsewhere
                producer_root = group_of[j]
                producer = groups[producer_root]
                if not _can_fuse(producer.pattern, value.op):  # type: ignore[arg-type]
                    continue
                # Merge the producer group into this one.
                mine = groups[group_of[i]]
                for idx in producer.indices:
                    group_of[idx] = group_of[i]
                mine.indices = sorted(set(mine.indices) | set(producer.indices))
                mine.pattern = max(mine.pattern, producer.pattern)
                if producer_root != group_of[i]:
                    del groups[producer_root]
                self.num_fused_ops += 1

        # Rebuild the chain. A group materializes at its *root* (the
        # highest index in the group); members are dropped from the chain.
        root_of_group: Dict[int, int] = {}
        for root_index, group in groups.items():
            materialize_at = max(group.indices)
            root_of_group[materialize_at] = root_index
        member_indices: Set[int] = set()
        for group in groups.values():
            member_indices.update(group.indices)

        new_bindings: List[PyTuple[Var, Expr]] = []
        for i, (var, value) in enumerate(bindings):
            if i in root_of_group:
                group = groups[root_of_group[i]]
                new_bindings.append((var, self._materialize(group, bindings)))
            elif i in member_indices:
                continue  # fused into a later root
            elif _wrappable_call(value):
                # OPAQUE (but non-dialect) calls become singleton kernels
                # too, so every compute lowers uniformly to InvokePacked.
                fake = _Group(i, get_op_def(value.op.name).pattern)  # type: ignore[union-attr]
                new_bindings.append((var, self._materialize(fake, bindings)))
            else:
                new_bindings.append((var, value))

        out = tail
        for var, value in reversed(new_bindings):
            out = Let(var, value, out)
        return out

    def _materialize(self, group: _Group, bindings: List[PyTuple[Var, Expr]]) -> Call:
        """Build the primitive function + call for one fused group."""
        self.num_groups += 1
        members = [bindings[i] for i in sorted(group.indices)]
        internal: Set[Var] = {var for var, _ in members}

        # External inputs in first-use order (vars and constants).
        ext_order: List[Expr] = []
        seen: Set[int] = set()
        for _, value in members:
            assert isinstance(value, Call)
            for arg in value.args:
                if isinstance(arg, Var) and arg in internal:
                    continue
                if id(arg) in seen:
                    continue
                # Identical Var referenced twice should become one param.
                if isinstance(arg, Var) and any(arg is e for e in ext_order):
                    continue
                seen.add(id(arg))
                ext_order.append(arg)

        params: List[Var] = []
        replacement: Dict[int, Var] = {}
        for ext in ext_order:
            ty: Optional[Type] = ext.checked_type
            if ty is None:
                raise CompilerError("FuseOps requires a type-checked module")
            param = Var(self.names.fresh("p"), ty)
            params.append(param)
            replacement[id(ext)] = param

        def subst(arg: Expr) -> Expr:
            if isinstance(arg, Var) and arg in internal:
                return arg
            return replacement.get(id(arg), arg)

        # Body: inner let chain over the members, ending at the root value.
        root_var, root_value = members[-1]
        new_values: List[PyTuple[Var, Call]] = []
        for var, value in members:
            assert isinstance(value, Call)
            new_values.append(
                (var, Call(value.op, [subst(a) for a in value.args], value.attrs))
            )
        body: Expr = new_values[-1][1]
        for var, value in reversed(new_values[:-1]):
            body = Let(var, value, body)

        ret_type = root_var.checked_type
        prim = Function(params, body, ret_type, {"primitive": True})
        return Call(prim, list(ext_order))


class FuseOps(Pass):
    name = "FuseOps"

    def run(self, mod: IRModule) -> IRModule:
        out = mod.shallow_copy()
        for gv, func in list(out.functions.items()):
            if func.is_primitive:
                continue
            fuser = _Fuser()
            out.functions[gv] = Function(
                func.params, fuser.fuse_expr(func.body), func.ret_type, func.attrs
            )
        return out
