"""Memory-plan lifetime checker.

The memory planner coalesces storage only when live ranges are provably
disjoint; the VM then releases every storage block by reference count at
frame teardown — on the return path *and* on error paths (``Fatal`` or a
raised ``VMError`` unwinds the frame, dropping every register and with
them the last references), which is why "released on all paths" is a
structural property of the frame model rather than per-path bookkeeping.
What can still go wrong statically, and what this checker proves never
does:

* two tensors carved out of the **same** storage token, with
  **intersecting byte ranges**, are never **live at the same time** —
  the planner's one invariant, re-proven from the bytecode instead of
  the planner's own interval data (N-version, like the race checker);
* a tensor is not read before anything has written it (uninitialized
  bytes) — *warning*, since a kernel may legitimately treat an output
  as scratch;
* every allocated storage block is actually carved into at least one
  tensor — *warning*: an unused allocation is dead weight the planner
  should have eliminated, not a soundness hole.

Scope: straight-line functions (the only ones the memory planner and
stream scheduler restructure). Extents are resolved by constant
propagation over ``LoadConsti``/``LoadConst`` of scalar integers — the
form the compiler emits for every static allocation site. Dynamic sites
(``AllocTensorReg``, register-valued offsets that never resolve) make
their token *unverifiable* and are skipped: this checker proves the
static fragment and stays silent where it cannot prove, so compiled
dynamic models verify clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

import numpy as np

from repro.errors import Finding
from repro.vm import instruction as ins
from repro.vm.executable import Executable, VMFunction
from repro.vm.schedule import is_straight_line


@dataclass
class _Storage:
    token: int
    pc: int
    size: Optional[int]
    used: bool = False
    unverifiable: bool = False


@dataclass
class _Tensor:
    uid: int
    token: int
    pc: int
    offset: Optional[int]
    nbytes: Optional[int]
    first_write: Optional[int] = None
    last_use: int = -1
    has_read: bool = False
    escapes: bool = False


def _scalar_int(value) -> Optional[int]:
    arr = np.asarray(value.numpy() if hasattr(value, "numpy") else value)
    if arr.size == 1 and arr.dtype.kind in "iu":
        return int(arr.reshape(())[()])
    return None


def check_function_lifetimes(
    func: VMFunction, exe: Executable
) -> List[Finding]:
    if not is_straight_line(func):
        return []
    findings: List[Finding] = []
    consts: Dict[int, Optional[int]] = {}
    storages: List[_Storage] = []
    storage_of: Dict[int, int] = {}  # register -> token
    tensors: List[_Tensor] = []
    held: Dict[int, FrozenSet[int]] = {}  # register -> tensor uids

    def clobber(reg: int) -> None:
        consts.pop(reg, None)
        storage_of.pop(reg, None)
        held.pop(reg, None)

    def read(reg: int, pc: int) -> None:
        for uid in held.get(reg, ()):  # a data read of every aliased tensor
            t = tensors[uid]
            t.last_use = pc
            t.has_read = True

    def write(reg: int, pc: int) -> None:
        for uid in held.get(reg, ()):
            t = tensors[uid]
            if t.first_write is None:
                t.first_write = pc
            t.last_use = pc

    n = len(func.instructions)
    for pc, instr in enumerate(func.instructions):
        if isinstance(instr, ins.LoadConsti):
            clobber(instr.dst)
            consts[instr.dst] = int(instr.value)
        elif isinstance(instr, ins.LoadConst):
            clobber(instr.dst)
            consts[instr.dst] = _scalar_int(exe.constants[instr.const_index])
        elif isinstance(instr, ins.AllocStorage):
            clobber(instr.dst)
            token = len(storages)
            storages.append(
                _Storage(token, pc, consts.get(instr.allocation_size))
            )
            storage_of[instr.dst] = token
        elif isinstance(instr, (ins.AllocTensor, ins.AllocTensorReg)):
            token = storage_of.get(instr.storage)
            clobber(instr.dst)
            if token is None:
                continue  # bytecode checker owns "not a storage" findings
            storage = storages[token]
            storage.used = True
            if isinstance(instr, ins.AllocTensorReg):
                # Shape arrives in a register: extent is dynamic, the
                # token leaves the provable fragment.
                storage.unverifiable = True
                continue
            offset = consts.get(instr.offset)
            nbytes: Optional[int] = None
            try:
                itemsize = np.dtype(instr.dtype).itemsize
                nbytes = int(np.prod(instr.shape, dtype=np.int64)) * itemsize
            except TypeError:
                storage.unverifiable = True
            if offset is None:
                storage.unverifiable = True
            uid = len(tensors)
            tensors.append(_Tensor(uid, token, pc, offset, nbytes))
            held[instr.dst] = frozenset((uid,))
        elif isinstance(instr, ins.Move):
            src_consts = consts.get(instr.src)
            src_tok = storage_of.get(instr.src)
            src_held = held.get(instr.src)
            clobber(instr.dst)
            if src_consts is not None:
                consts[instr.dst] = src_consts
            if src_tok is not None:
                storage_of[instr.dst] = src_tok
            if src_held is not None:
                held[instr.dst] = src_held
        elif isinstance(instr, ins.ReshapeTensor):
            src_held = held.get(instr.tensor)
            clobber(instr.dst)
            if src_held is not None:
                held[instr.dst] = src_held  # same bytes, new metadata
        elif isinstance(instr, ins.AllocADT):
            merged: FrozenSet[int] = frozenset()
            for f in instr.fields:
                merged |= held.get(f, frozenset())
            clobber(instr.dst)
            held[instr.dst] = merged
        elif isinstance(instr, ins.GetField):
            src_held = held.get(instr.obj)
            clobber(instr.dst)
            if src_held is not None:
                held[instr.dst] = src_held  # conservative: whole ADT
        elif isinstance(instr, ins.InvokePacked):
            num_inputs = instr.arity - instr.output_size
            for r in instr.args[:num_inputs]:
                read(r, pc)
            for r in instr.args[num_inputs:]:
                write(r, pc)
        elif isinstance(instr, ins.DeviceCopy):
            read(instr.src, pc)
            clobber(instr.dst)  # fresh buffer on the destination device
        elif isinstance(instr, ins.Ret):
            for uid in held.get(instr.result, ()):
                t = tensors[uid]
                t.escapes = True
                t.last_use = n  # alive past the frame
            break
        else:
            _, writes = _instr_writes(instr)
            for r in writes:
                clobber(r)

    by_token: Dict[int, List[_Tensor]] = {}
    for t in tensors:
        by_token.setdefault(t.token, []).append(t)
    for storage in storages:
        if not storage.used:
            findings.append(
                Finding(
                    "lifetimes", func.name, storage.pc,
                    "storage block is allocated but never carved into a "
                    "tensor",
                    severity="warning",
                )
            )
        if storage.unverifiable:
            continue
        group = by_token.get(storage.token, [])
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                if a.offset is None or b.offset is None:
                    continue
                if a.nbytes is None or b.nbytes is None:
                    continue
                if a.offset + a.nbytes <= b.offset:
                    continue  # disjoint byte ranges
                if b.offset + b.nbytes <= a.offset:
                    continue
                fa = a.first_write if a.first_write is not None else a.pc
                fb = b.first_write if b.first_write is not None else b.pc
                if max(fa, fb) <= min(a.last_use, b.last_use):
                    findings.append(
                        Finding(
                            "lifetimes", func.name, b.pc,
                            f"tensors@{a.pc} and @{b.pc} share storage "
                            f"token {storage.token} with intersecting "
                            f"byte ranges and overlapping live intervals",
                        )
                    )
    for t in tensors:
        if t.has_read and t.first_write is None:
            findings.append(
                Finding(
                    "lifetimes", func.name, t.pc,
                    "tensor is read but never written in this frame "
                    "(uninitialized bytes unless the kernel treats it "
                    "as scratch)",
                    severity="warning",
                )
            )
    return findings


def _instr_writes(instr: ins.Instruction):
    """(reads, writes) for instructions the walk above has no special
    case for — only the write set is consulted, to clobber stale facts."""
    dst = getattr(instr, "dst", None)
    return (), (() if dst is None else (dst,))


def check_lifetimes(exe: Executable) -> List[Finding]:
    """Prove the memory plan of every straight-line function sound."""
    findings: List[Finding] = []
    for func in exe.functions:
        findings.extend(check_function_lifetimes(func, exe))
    return findings
