"""`repro.analysis` — static verification for every executable.

Four independent checkers prove an executable well-formed without running
it (docs/analysis.md has the catalog):

* :mod:`repro.analysis.bytecode` — abstract interpretation: registers
  defined on all paths, operand/arity/bounds validity, storage
  alloc-before-use, jump targets, stream/event bounds;
* :mod:`repro.analysis.races` — independent vector-clock happens-before
  over the serialized ``StreamEvent``/``StreamWait`` schedule, checking
  every hazard edge of the AOT dependency graph plus the cross-function
  fence/join contract;
* :mod:`repro.analysis.lifetimes` — no two overlapping live intervals
  share intersecting bytes of one storage token;
* :mod:`repro.analysis.lint` — IR well-formedness between passes
  (``Sequential(verify_each_pass=True)``).

:func:`verify_executable` is the driver the rest of the system calls: at
the end of every compile (``CompilerOptions(verify=True)``, the default),
on every store load (`repro.store` rejects-and-counts a blob that fails
verification exactly like a corrupt one — it is never executed), sampled
in serving (``ServeConfig.verify_sample``), and in CI
(`benchmarks/verify_artifacts.py`).

Findings, not exceptions, are the checkers' native output: each checker
returns a list of :class:`repro.errors.Finding` and
:func:`assert_verified` normalizes error-severity findings into one
:class:`repro.errors.VerificationError`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import Finding, VerificationError
from repro.analysis.bytecode import check_bytecode
from repro.analysis.lifetimes import check_lifetimes
from repro.analysis.lint import lint_function, lint_module
from repro.analysis.races import check_races
from repro.analysis.mutate import OPERATORS, all_mutants

__all__ = [
    "Finding",
    "VerificationError",
    "check_bytecode",
    "check_races",
    "check_lifetimes",
    "check_guard",
    "lint_module",
    "lint_function",
    "verify_executable",
    "assert_verified",
    "OPERATORS",
    "all_mutants",
]


def verify_executable(exe) -> List[Finding]:
    """Run every executable-level checker; returns all findings.

    The bytecode verifier runs first and, if it reports errors, alone:
    the race and lifetime checkers assume structurally valid bytecode
    (in-bounds registers and indices), so their output on a mangled
    executable would be noise stacked on the real defect.
    """
    findings = check_bytecode(exe)
    if any(f.severity == "error" for f in findings):
        return findings
    findings = findings + check_races(exe) + check_lifetimes(exe) + check_guard(exe)
    return findings


def check_guard(exe) -> List[Finding]:
    """Check the entry shape-guard contract of specialized executables.

    A *partial* specialization (some dims in ``specialized_shapes`` left
    ``None``) is only sound member-wise: its entry guard checks each
    call's bound dims and the serving layer deopts mismatches one member
    at a time. A batch-specialized partial variant would stack members
    whose unbound dims may disagree into one call, which the guard
    cannot express — the compiler refuses to build one
    (``BatchSpecializeError``), and this checker rejects any blob that
    claims otherwise (a tampered or buggy-writer artifact).
    """
    is_partial = getattr(exe, "is_partial", False)
    batch = getattr(exe, "specialized_batch", None) or 1
    if is_partial and batch > 1:
        return [
            Finding(
                checker="guard",
                function=exe.entry,
                pc=-1,
                message=(
                    f"partially specialized executable claims batch "
                    f"{batch}: partial variants are member-wise only "
                    f"(the entry guard checks one member's bound dims)"
                ),
            )
        ]
    return []


def assert_verified(exe, context: Optional[str] = None) -> List[Finding]:
    """Raise :class:`VerificationError` on any error-severity finding;
    returns the full finding list (warnings included) when clean."""
    findings = verify_executable(exe)
    errors = [f for f in findings if f.severity == "error"]
    if errors:
        raise VerificationError(errors, context)
    return findings
