"""Mutation harness: seeded corruptions that prove the checkers' teeth.

Each operator takes a (presumed clean) :class:`Executable` and returns a
corrupted *copy* — the input is never modified — or ``None`` when the
executable has no site for that corruption class (e.g. a single-stream
build has no ``StreamWait`` to drop). ``tests/test_analysis.py`` builds
real model executables, applies every operator, and asserts
:func:`repro.analysis.verify_executable` reports at least one error
finding per mutant: the acceptance bar is 100% detection of every
corruption class that applies.

Operators and why each seeded instance is *guaranteed* non-equivalent:

* :func:`drop_stream_wait` removes the wait directly preceding a device
  kernel. The scheduler's ``_plan_events`` emits a wait only when the
  dependency is not already covered by every merge that precedes it, so
  the *last* wait before a kernel is always load-bearing — dropping it
  leaves a genuinely unordered hazard edge (or an unfenced entry).
* :func:`swap_stream` moves a kernel that has a cross-stream dependent
  onto a third stream. Its recorded event stays on the old stream, whose
  snapshot no longer covers the kernel, so every consumer's edge breaks.
* :func:`reorder_event` moves an event's record after its wait; waiting
  on a not-yet-recorded event is the interpreter's documented no-op, so
  the wait silently stops synchronizing — the classic lost-wakeup.
* :func:`alias_storage` rebinds one ``AllocStorage`` destination to an
  earlier live storage register, making two tensor families share bytes.
  Candidate pairs are tried in program order and the first one the
  lifetime checker can prove overlapping is returned — pairs whose
  lifetimes happen to be disjoint would be *equivalent mutants* (the
  corruption is harmless), and excluding those is standard mutation-
  testing practice. If the checker were blind, no pair would qualify
  and the operator would return ``None``, failing the harness test.
* :func:`undefine_register` grows the register file by one and points a
  kernel operand at the fresh, never-written register.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Dict, List, Optional

from repro.vm import instruction as ins
from repro.vm.executable import Executable, VMFunction
from repro.vm.schedule import build_dependency_graph


def _clone(exe: Executable) -> Executable:
    """Copy deep enough to mutate instruction lists; kernels/constants are
    shared (instructions themselves are frozen dataclasses)."""
    return dc_replace(
        exe,
        functions=[
            VMFunction(f.name, f.num_params, list(f.instructions), f.register_count)
            for f in exe.functions
        ],
        func_index=dict(exe.func_index),
    )


def _is_device_kernel(instr: ins.Instruction) -> bool:
    return (
        isinstance(instr, ins.InvokePacked)
        and instr.kind == "compute"
        and instr.device.is_gpu
    )


def drop_stream_wait(exe: Executable) -> Optional[Executable]:
    """Remove the StreamWait directly preceding a device kernel."""
    for fi, func in enumerate(exe.functions):
        instrs = func.instructions
        for pos in range(1, len(instrs)):
            if _is_device_kernel(instrs[pos]) and isinstance(
                instrs[pos - 1], ins.StreamWait
            ):
                mutant = _clone(exe)
                del mutant.functions[fi].instructions[pos - 1]
                return mutant
    return None


def swap_stream(exe: Executable) -> Optional[Executable]:
    """Move a kernel with a cross-stream dependent onto a third stream."""
    if exe.device_streams < 3:
        return None
    for fi, func in enumerate(exe.functions):
        nodes = build_dependency_graph(func)
        if not nodes:
            continue
        streams = {n.id: n.instr.stream for n in nodes}
        consumers: Dict[int, List[int]] = {}
        for n in nodes:
            for d in n.deps:
                consumers.setdefault(d, []).append(n.id)
        for n in nodes:
            down = consumers.get(n.id, [])
            if not any(streams[c] != streams[n.id] for c in down):
                continue
            taken = {streams[n.id]} | {streams[c] for c in down}
            free = [t for t in range(exe.device_streams) if t not in taken]
            if not free:
                continue
            mutant = _clone(exe)
            mutant.functions[fi].instructions[n.pos] = dc_replace(
                n.instr, stream=free[0]
            )
            return mutant
    return None


def reorder_event(exe: Executable) -> Optional[Executable]:
    """Move an event's record after its wait (the wait becomes a no-op)."""
    for fi, func in enumerate(exe.functions):
        instrs = func.instructions
        for pos in range(1, len(instrs)):
            if not (
                _is_device_kernel(instrs[pos])
                and isinstance(instrs[pos - 1], ins.StreamWait)
            ):
                continue
            wait = instrs[pos - 1]
            for epos, e in enumerate(instrs):
                if (
                    isinstance(e, ins.StreamEvent)
                    and e.event_index == wait.event_index
                    and epos < pos - 1
                ):
                    mutant = _clone(exe)
                    mi = mutant.functions[fi].instructions
                    event = mi.pop(epos)
                    # pos-1 now addresses the wait; record right after it.
                    mi.insert(pos - 1, event)
                    return mutant
    return None


def alias_storage(exe: Executable) -> Optional[Executable]:
    """Rebind an AllocStorage destination to an earlier storage register,
    choosing the first pair whose shared lifetimes provably overlap."""
    from repro.analysis.lifetimes import check_function_lifetimes

    for fi, func in enumerate(exe.functions):
        instrs = func.instructions
        alloc_positions = [
            pos for pos, i in enumerate(instrs)
            if isinstance(i, ins.AllocStorage)
        ]
        for j, bpos in enumerate(alloc_positions):
            for apos in alloc_positions[:j]:
                a_dst = instrs[apos].dst
                b = instrs[bpos]
                if a_dst == b.dst:
                    continue
                # a_dst must still hold storage A at B's position.
                clobbered = any(
                    a_dst in _writes(instrs[k])
                    for k in range(apos + 1, bpos + 1)
                )
                if clobbered:
                    continue
                mutant = _clone(exe)
                mutant.functions[fi].instructions[bpos] = ins.Move(
                    src=a_dst, dst=b.dst
                )
                if any(
                    f.severity == "error"
                    for f in check_function_lifetimes(
                        mutant.functions[fi], mutant
                    )
                ):
                    return mutant  # non-equivalent: overlap is provable
    return None


def undefine_register(exe: Executable) -> Optional[Executable]:
    """Point a kernel operand at a fresh register nothing ever writes."""
    for fi, func in enumerate(exe.functions):
        for pos, instr in enumerate(func.instructions):
            if isinstance(instr, ins.InvokePacked) and instr.args:
                mutant = _clone(exe)
                f = mutant.functions[fi]
                fresh = f.register_count
                mutant.functions[fi] = VMFunction(
                    f.name, f.num_params, f.instructions, f.register_count + 1
                )
                args = (fresh,) + tuple(instr.args[1:])
                mutant.functions[fi].instructions[pos] = dc_replace(
                    instr, args=args
                )
                return mutant
    return None


def _writes(instr: ins.Instruction):
    dst = getattr(instr, "dst", None)
    return () if dst is None else (dst,)


#: Every operator, keyed by corruption-class name; ``None`` results mean
#: the class does not apply to the given executable (e.g. single-stream).
OPERATORS = {
    "drop_stream_wait": drop_stream_wait,
    "swap_stream": swap_stream,
    "reorder_event": reorder_event,
    "alias_storage": alias_storage,
    "undefine_register": undefine_register,
}


def all_mutants(exe: Executable) -> Dict[str, Optional[Executable]]:
    """Apply every operator; see :data:`OPERATORS` for the class names."""
    return {name: op(exe) for name, op in OPERATORS.items()}
