"""Stream-schedule race detector: an N-version cross-check of the static
scheduler (`vm/schedule.py`).

The scheduler inserts ``StreamEvent``/``StreamWait`` pairs using its own
vector-clock bookkeeping. This checker trusts **none** of that state: it
re-derives happens-before purely from the *serialized* bytecode — the
events and waits actually present in the instruction stream — and then
demands that every RAW/WAR/WAW hazard edge of
:func:`repro.vm.schedule.build_dependency_graph` is covered. A scheduler
bug that records the right internal clocks but emits the wrong
instructions (or a blob corrupted after the fact) is caught here, where a
re-run of the scheduler would happily agree with itself.

Happens-before model (matching the interpreter's stream semantics):

* streams are in-order queues: kernel *k* on stream *s* is ordered after
  every earlier kernel on *s*, for free;
* ``StreamEvent(e, dev, t)`` records a snapshot of everything stream *t*
  has issued **and** is transitively ordered after, at that point of the
  instruction stream;
* ``StreamWait(e, dev, s)`` merges that snapshot into stream *s*'s
  knowledge — waiting on a never-recorded event is the interpreter's
  documented no-op, so the model learns nothing from it (which is
  exactly how a reordered event betrays itself: its waits stop teaching);
* ``DeviceCopy`` synchronizes the device: everything issued so far is
  retired for every stream (the global ``floor``) — mirroring the
  barrier that lets ``build_dependency_graph`` drop old edges.

Cross-function obligations (the fence/join contract of
``docs/scheduling.md``): a scheduled **non-entry** function runs under a
caller that assumes it is a stream-0 unit — the LSTM cell invoked from a
loop is the canonical case. The checker models the caller as one virtual
kernel already pending on stream 0 and requires (a) every side-stream
kernel to be ordered after it (the *entry fence*) and (b) stream 0 to be
ordered after every side stream's last kernel before ``Ret`` (the *exit
join*). Dropping either half of the bracket is a race against the
caller's previous or next iteration even when the body is internally
consistent.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set

from repro.errors import Finding
from repro.vm import instruction as ins
from repro.vm.executable import Executable, VMFunction
from repro.vm.schedule import build_dependency_graph, is_straight_line


def _check_function(
    func: VMFunction, is_entry: bool
) -> List[Finding]:
    has_sync = any(
        isinstance(i, (ins.StreamEvent, ins.StreamWait))
        for i in func.instructions
    )
    has_side = any(
        isinstance(i, ins.InvokePacked) and i.stream != 0
        for i in func.instructions
    )
    if not is_straight_line(func):
        if has_sync or has_side:
            # The scheduler's first soundness rule: control flow and
            # calls never get a static schedule. A branch could skip an
            # event its waiter relies on.
            return [
                Finding(
                    "races", func.name, -1,
                    "function with control flow or calls carries a "
                    "stream schedule (events/waits or side-stream "
                    "kernels); the static scheduler is unsound here",
                )
            ]
        return []
    if not has_sync and not has_side:
        return []  # pure stream-0 unit: program order covers everything

    findings: List[Finding] = []
    nodes = build_dependency_graph(func)
    node_at = {n.pos: n for n in nodes}
    # issued[s]: kernels issued on stream s so far (1-based seq numbers).
    # know[s][t]: newest seq on stream t that stream s is ordered after.
    # floor[t]: seqs on t retired for *everyone* (DeviceCopy sync).
    issued: Dict[int, int] = defaultdict(int)
    know: Dict[int, Dict[int, int]] = defaultdict(dict)
    floor: Dict[int, int] = {}
    events: Dict[int, Dict[int, int]] = {}
    ts: Dict[int, tuple] = {}  # node id -> (stream, seq)
    if not is_entry:
        issued[0] = 1  # the virtual caller kernel pending on stream 0

    def ordered(s: int, t: int, seq: int) -> bool:
        if t == s:
            return True  # in-order stream
        if floor.get(t, 0) >= seq:
            return True  # device-synced
        return know[s].get(t, 0) >= seq

    unfenced_reported: Set[int] = set()
    for pos, instr in enumerate(func.instructions):
        if isinstance(instr, ins.StreamEvent):
            snap = dict(know[instr.stream])
            snap[instr.stream] = issued[instr.stream]
            events[instr.event_index] = snap
        elif isinstance(instr, ins.StreamWait):
            snap = events.get(instr.event_index)
            if snap is None:
                continue  # never recorded: interpreter no-op, teaches nothing
            k = know[instr.stream]
            for t, seq in snap.items():
                if k.get(t, 0) < seq:
                    k[t] = seq
        elif isinstance(instr, ins.DeviceCopy):
            for t, seq in issued.items():
                if floor.get(t, 0) < seq:
                    floor[t] = seq
        elif isinstance(instr, ins.InvokePacked):
            node = node_at.get(pos)
            if node is None:
                continue  # host-side kernel: no device ordering edges
            s = instr.stream
            if (
                not is_entry
                and s != 0
                and s not in unfenced_reported
                and not ordered(s, 0, 1)
            ):
                unfenced_reported.add(s)
                findings.append(
                    Finding(
                        "races", func.name, pos,
                        f"stream {s} runs kernels without waiting on the "
                        f"caller's pending stream-0 work (missing entry "
                        f"fence)",
                    )
                )
            for d in sorted(node.deps):
                dep_stream, dep_seq = ts[d]
                if not ordered(s, dep_stream, dep_seq):
                    findings.append(
                        Finding(
                            "races", func.name, pos,
                            f"hazard edge unordered: kernel@{pos} (stream "
                            f"{s}) depends on kernel@{nodes[d].pos} "
                            f"(stream {dep_stream}) with no "
                            f"happens-before path",
                        )
                    )
            issued[s] += 1
            ts[node.id] = (s, issued[s])
        elif isinstance(instr, ins.Ret):
            break  # straight-line: first Ret ends the function
    if not is_entry:
        for t, seq in issued.items():
            if t != 0 and seq > 0 and not ordered(0, t, seq):
                findings.append(
                    Finding(
                        "races", func.name, -1,
                        f"stream 0 returns before stream {t}'s kernels "
                        f"are ordered (missing exit join)",
                    )
                )
    return findings


def check_races(exe: Executable) -> List[Finding]:
    """Re-derive happens-before from the serialized schedule of every
    function and check each hazard edge of the AOT dependency graph."""
    entry_index = exe.func_index.get(exe.entry)
    findings: List[Finding] = []
    for i, func in enumerate(exe.functions):
        findings.extend(_check_function(func, is_entry=(i == entry_index)))
    return findings
