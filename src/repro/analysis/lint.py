"""IR well-formedness lint.

Structural hygiene for :class:`IRModule` values between passes:

* **scoping** — no free variables anywhere in a module-level function,
  and no ``GlobalVar`` reference that the module does not define
  (*error*: a pass dropped or duplicated a binder);
* **unique binders** — the same ``Var`` object bound twice violates the
  convention every analysis in ``ir/analysis.py`` relies on (*error*);
* **type agreement** — after InferType, a ``Let``'s variable and bound
  value must carry structurally identical ``checked_type``s (*error*),
  and any node missing a ``checked_type`` is reported (*warning* under
  ``typed=True``);
* **ANF discipline** (``anf=True``) — call/tuple operands must be
  atoms: a nested ``Call``/``Let``/``If`` inside an argument list means
  a pass re-nested what ``ToANF`` flattened (*error*);
* **hygiene warnings** — unused ``Let`` bindings and name-hint
  shadowing, which are legal but usually betray a sloppy rewrite.

``PassManager``'s ``verify_each_pass`` debug mode runs this after every
pass (`passes/pass_manager.py`), turning "pass X miscompiled something
three passes later" into "pass X produced ill-formed IR", with the pass
name in the exception context.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import Finding
from repro.ir.analysis import _pattern_vars, free_vars, iter_nodes
from repro.ir.expr import (
    Call,
    Constant,
    Constructor,
    Expr,
    Function,
    GlobalVar,
    If,
    Let,
    Match,
    Tuple,
    TupleGetItem,
    Var,
)
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.ir.types import type_hash

_ATOMS = (Var, Constant, GlobalVar, Constructor, Op, Function)


def _binder_sites(func: Function):
    """Yield every (binder Var, node) pair inside *func*."""
    for p in func.params:
        yield p, func
    for node in iter_nodes(func.body):
        if isinstance(node, Let):
            yield node.var, node
        elif isinstance(node, Function):
            for p in node.params:
                yield p, node
        elif isinstance(node, Match):
            for clause in node.clauses:
                for v in _pattern_vars(clause.pattern):
                    yield v, node


def lint_function(
    name: str,
    func: Function,
    known_globals: Optional[Set[GlobalVar]] = None,
    typed: bool = True,
    anf: bool = False,
) -> List[Finding]:
    findings: List[Finding] = []

    def report(message: str, severity: str = "error") -> None:
        findings.append(Finding("lint", name, -1, message, severity))

    for v in free_vars(func):
        report(f"free variable %{v.name_hint} (no enclosing binder)")
    if known_globals is not None:
        for node in iter_nodes(func):
            if isinstance(node, GlobalVar) and node not in known_globals:
                report(f"reference to undefined global @{node.name_hint}")

    seen_binders: Set[Var] = set()
    hints: Dict[str, int] = {}
    for var, _site in _binder_sites(func):
        if var in seen_binders:
            report(f"variable %{var.name_hint} is bound more than once "
                   f"(unique-binder convention)")
        seen_binders.add(var)
        hints[var.name_hint] = hints.get(var.name_hint, 0) + 1
    for hint, count in hints.items():
        if count > 1:
            report(f"name hint %{hint} is bound {count} times (shadowing)",
                   severity="warning")

    # iter_nodes never yields binder positions (binders are not children),
    # so every Var it produces is a use site.
    used: Set[Var] = {
        n for n in iter_nodes(func.body) if isinstance(n, Var)
    }
    for node in iter_nodes(func.body):
        if isinstance(node, Let) and node.var not in used:
            report(f"unused binding %{node.var.name_hint}",
                   severity="warning")

    if typed:
        for node in iter_nodes(func.body):
            if isinstance(node, (Op, Constructor)):
                continue  # polymorphic atoms carry no checked_type
            if isinstance(node, GlobalVar):
                continue
            if node.checked_type is None:
                report(
                    f"{type(node).__name__} node has no checked_type "
                    f"(InferType not run or pass dropped it)",
                    severity="warning",
                )
            if isinstance(node, Let):
                vt, et = node.var.checked_type, node.value.checked_type
                if vt is not None and et is not None and type_hash(
                    vt
                ) != type_hash(et):
                    report(
                        f"let-binding %{node.var.name_hint}: variable "
                        f"type {vt} disagrees with value type {et}"
                    )

    if anf:
        for node in iter_nodes(func.body):
            operands = ()
            if isinstance(node, Call):
                operands = node.args
            elif isinstance(node, Tuple):
                operands = node.fields
            elif isinstance(node, TupleGetItem):
                operands = (node.tuple_value,)
            elif isinstance(node, If):
                operands = (node.cond,)
            elif isinstance(node, Match):
                operands = (node.data,)
            for arg in operands:
                if not isinstance(arg, _ATOMS):
                    report(
                        f"non-atomic {type(arg).__name__} operand of "
                        f"{type(node).__name__} (ANF discipline)"
                    )
    return findings


def lint_module(
    mod: IRModule, typed: bool = True, anf: bool = False
) -> List[Finding]:
    """Lint every non-primitive function of *mod*; primitive (fused)
    bodies are opaque kernels with their own internal conventions."""
    findings: List[Finding] = []
    known = set(mod.functions)
    for gv, func in mod.functions.items():
        if func.is_primitive:
            continue
        findings.extend(
            lint_function(gv.name_hint, func, known, typed=typed, anf=anf)
        )
    return findings
