"""Static bytecode verifier: abstract interpretation over each
:class:`VMFunction`.

Proves, without executing anything:

* every register is defined on **all** control-flow paths before it is
  read (parameters arrive pre-defined in registers ``0..num_params-1``);
* operands are structurally valid per opcode (register indices inside
  the declared register file, ``arity``/``output_size`` agree with the
  argument list, ADT/closure field counts agree);
* constant-pool, function-table, and kernel-table indices are in
  bounds, and ``Invoke`` passes the callee's declared parameter count;
* a tensor is only ever allocated out of a register that can actually
  hold a storage block (``AllocStorage`` result, possibly moved) —
  never one that provably holds something else;
* jump targets stay inside the function and no path falls off the end
  (the interpreter raises ``VMError`` for that at run time; the
  verifier rejects it at load time);
* stream/event operands fit the executable's declared schedule
  (``stream < device_streams``, ``event_index < num_events``).

The analysis is a forward dataflow fixpoint over two register facts:
*definitely defined* (meet = intersection — must hold on every path)
and *definitely not a storage block* (meet = intersection). Both are
bitmasks over the register file, so the transfer functions are integer
ops and the whole pass costs a small fraction of a compile
(``benchmarks/bench_verify.py`` asserts <5%).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import Finding
from repro.vm import instruction as ins
from repro.vm.executable import Executable, VMFunction

# Instructions that terminate a path: control never falls through them.
_TERMINAL = (ins.Ret, ins.Fatal)


# ``(reads, writes)`` register extractors, dispatched on exact type
# (instructions are final dataclasses): one dict lookup instead of an
# isinstance chain, on the hottest path of the whole verifier.
#
# ``InvokePacked`` *reads* its output registers too: the calling
# convention requires them to hold pre-allocated tensors the kernel
# writes into, so an undefined output register is as fatal as an
# undefined input.
_OPERAND_FNS = {
    ins.Move: lambda i: ((i.src,), (i.dst,)),
    ins.Ret: lambda i: ((i.result,), ()),
    ins.Invoke: lambda i: (tuple(i.args), (i.dst,)),
    ins.InvokeClosure: lambda i: ((i.closure,) + tuple(i.args), (i.dst,)),
    ins.InvokePacked: lambda i: (tuple(i.args), ()),
    ins.AllocStorage: lambda i: ((i.allocation_size,), (i.dst,)),
    ins.AllocTensor: lambda i: ((i.storage, i.offset), (i.dst,)),
    ins.AllocTensorReg: lambda i: (
        (i.storage, i.offset, i.shape_register), (i.dst,)
    ),
    ins.AllocADT: lambda i: (tuple(i.fields), (i.dst,)),
    ins.AllocClosure: lambda i: (tuple(i.captured), (i.dst,)),
    ins.GetField: lambda i: ((i.obj,), (i.dst,)),
    ins.GetTag: lambda i: ((i.obj,), (i.dst,)),
    ins.If: lambda i: ((i.test, i.target), ()),
    ins.LoadConst: lambda i: ((), (i.dst,)),
    ins.LoadConsti: lambda i: ((), (i.dst,)),
    ins.DeviceCopy: lambda i: ((i.src,), (i.dst,)),
    ins.ShapeOf: lambda i: ((i.tensor,), (i.dst,)),
    ins.ReshapeTensor: lambda i: ((i.tensor, i.newshape), (i.dst,)),
}

_NO_OPERANDS = ((), ())


def _operands(instr: ins.Instruction) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """``(reads, writes)`` register tuples for one instruction."""
    fn = _OPERAND_FNS.get(type(instr))
    return fn(instr) if fn is not None else _NO_OPERANDS


# Opcodes whose destination certainly does NOT hold a storage block.
_NON_STORAGE_DEFS = (
    ins.AllocTensor,
    ins.AllocTensorReg,
    ins.AllocADT,
    ins.AllocClosure,
    ins.GetTag,
    ins.LoadConst,
    ins.LoadConsti,
    ins.DeviceCopy,
    ins.ShapeOf,
    ins.ReshapeTensor,
)


def _successors(pc: int, instr: ins.Instruction, length: int) -> List[int]:
    if isinstance(instr, _TERMINAL):
        return []
    if isinstance(instr, ins.Goto):
        return [pc + instr.pc_offset]
    if isinstance(instr, ins.If):
        return [pc + instr.true_offset, pc + instr.false_offset]
    return [pc + 1]


def _structural_findings(
    func: VMFunction, exe: Executable, ops: List[Tuple]
) -> List[Finding]:
    """Per-instruction operand validity — no dataflow required."""
    findings: List[Finding] = []
    n = len(func.instructions)

    def bad(pc: int, message: str) -> None:
        findings.append(Finding("bytecode", func.name, pc, message))

    if func.num_params > func.register_count:
        findings.append(
            Finding(
                "bytecode", func.name, -1,
                f"{func.num_params} parameters exceed the register file "
                f"({func.register_count})",
            )
        )
    for pc, instr in enumerate(func.instructions):
        reads, writes = ops[pc]
        for reg in reads + writes:
            if not 0 <= reg < func.register_count:
                bad(pc, f"register r{reg} outside the register file "
                        f"(register_count={func.register_count})")
        if isinstance(instr, ins.InvokePacked):
            if len(instr.args) != instr.arity:
                bad(pc, f"arity {instr.arity} disagrees with "
                        f"{len(instr.args)} argument register(s)")
            if not 0 <= instr.output_size <= instr.arity:
                bad(pc, f"output_size {instr.output_size} outside "
                        f"[0, arity={instr.arity}]")
            if not 0 <= instr.packed_index < len(exe.kernels):
                bad(pc, f"packed_index {instr.packed_index} outside the "
                        f"kernel table ({len(exe.kernels)})")
            if not 0 <= instr.stream < max(1, exe.device_streams):
                bad(pc, f"stream {instr.stream} outside the declared "
                        f"schedule (device_streams={exe.device_streams})")
        elif isinstance(instr, (ins.Invoke, ins.AllocClosure)):
            if not 0 <= instr.func_index < len(exe.functions):
                bad(pc, f"func_index {instr.func_index} outside the "
                        f"function table ({len(exe.functions)})")
            elif isinstance(instr, ins.Invoke):
                want = exe.functions[instr.func_index].num_params
                if len(instr.args) != want:
                    bad(pc, f"@{exe.functions[instr.func_index].name} takes "
                            f"{want} parameter(s), called with {len(instr.args)}")
        elif isinstance(instr, ins.LoadConst):
            if not 0 <= instr.const_index < len(exe.constants):
                bad(pc, f"const_index {instr.const_index} outside the "
                        f"constant pool ({len(exe.constants)})")
        elif isinstance(instr, ins.AllocADT):
            if instr.num_fields != len(instr.fields):
                bad(pc, f"num_fields {instr.num_fields} disagrees with "
                        f"{len(instr.fields)} field register(s)")
        elif isinstance(instr, ins.AllocClosure):
            pass  # func_index handled above
        elif isinstance(instr, (ins.StreamEvent, ins.StreamWait)):
            if not 0 <= instr.event_index < max(1, exe.num_events):
                bad(pc, f"event_index {instr.event_index} outside the "
                        f"event table (num_events={exe.num_events})")
            if not 0 <= instr.stream < max(1, exe.device_streams):
                bad(pc, f"stream {instr.stream} outside the declared "
                        f"schedule (device_streams={exe.device_streams})")
        if isinstance(instr, ins.AllocClosure) and instr.num_captured != len(
            instr.captured
        ):
            bad(pc, f"num_captured {instr.num_captured} disagrees with "
                    f"{len(instr.captured)} captured register(s)")
        # Explicit jumps only: plain fall-through past the last
        # instruction is the dataflow pass's "falls off the end" finding,
        # not a bad jump target.
        if isinstance(instr, (ins.Goto, ins.If)):
            for target in _successors(pc, instr, n):
                if not 0 <= target < n:
                    bad(pc, f"jump target {target} outside the function "
                            f"(length {n})")
    return findings


def check_function(func: VMFunction, exe: Executable) -> List[Finding]:
    """Verify one function; returns the (possibly empty) finding list."""
    ops = [_operands(i) for i in func.instructions]
    findings = _structural_findings(func, exe, ops)
    if findings:
        # Operand bounds are broken: the dataflow below would index off
        # the ends of its own lattices. The structural findings already
        # condemn the function.
        return findings

    n = len(func.instructions)
    if n == 0:
        return [Finding("bytecode", func.name, -1,
                        "empty function: execution falls off the end")]

    params_mask = (1 << func.num_params) - 1
    # defined[pc] / nonstorage[pc]: facts on entry to pc. None marks a
    # pc the fixpoint has not reached (unreachable so far).
    defined: List[Optional[int]] = [None] * n
    nonstorage: List[Optional[int]] = [None] * n
    defined[0] = params_mask
    nonstorage[0] = 0
    work = [0]
    while work:
        pc = work.pop()
        instr = func.instructions[pc]
        d, s = defined[pc], nonstorage[pc]
        _, writes = ops[pc]
        for reg in writes:
            d |= 1 << reg
        if isinstance(instr, ins.Move):
            # dst inherits src's storage-ness verdict.
            if s & (1 << instr.src):
                s |= 1 << instr.dst
            else:
                s &= ~(1 << instr.dst)
        elif isinstance(instr, ins.AllocStorage):
            s &= ~(1 << instr.dst)
        elif isinstance(instr, _NON_STORAGE_DEFS):
            s |= 1 << instr.dst
        elif isinstance(instr, (ins.Invoke, ins.InvokeClosure, ins.GetField)):
            # Results of calls / field projections: unknown — assume
            # they *could* be storage so the check below never lies.
            s &= ~(1 << instr.dst)
        for target in _successors(pc, instr, n):
            if not 0 <= target < n:
                continue  # fall-through off the end: reported below
            if defined[target] is None:
                defined[target] = d
                nonstorage[target] = s
                work.append(target)
            else:
                nd = defined[target] & d
                ns = nonstorage[target] & s
                if nd != defined[target] or ns != nonstorage[target]:
                    defined[target] = nd
                    nonstorage[target] = ns
                    work.append(target)

    for pc, instr in enumerate(func.instructions):
        d = defined[pc]
        if d is None:
            continue  # unreachable: nothing to prove
        reads, _ = ops[pc]
        for reg in reads:
            if not d & (1 << reg):
                findings.append(
                    Finding("bytecode", func.name, pc,
                            f"register r{reg} read before definition on "
                            f"some path")
                )
        if isinstance(instr, (ins.AllocTensor, ins.AllocTensorReg)):
            if d & (1 << instr.storage) and nonstorage[pc] & (1 << instr.storage):
                findings.append(
                    Finding("bytecode", func.name, pc,
                            f"register r{instr.storage} provably does not "
                            f"hold a storage block")
                )
        if not isinstance(
            instr, _TERMINAL + (ins.Goto, ins.If)
        ) and pc + 1 == n:
            findings.append(
                Finding("bytecode", func.name, pc,
                        "execution falls off the end of the function")
            )
    return findings


def check_bytecode(exe: Executable) -> List[Finding]:
    """Run the bytecode verifier over every function of *exe*."""
    findings: List[Finding] = []
    if exe.entry not in exe.func_index:
        findings.append(
            Finding("bytecode", exe.entry, -1,
                    f"entry function {exe.entry!r} missing from the "
                    f"function table")
        )
    for name, index in exe.func_index.items():
        if not 0 <= index < len(exe.functions):
            findings.append(
                Finding("bytecode", name, -1,
                        f"function index {index} outside the table "
                        f"({len(exe.functions)})")
            )
    for func in exe.functions:
        findings.extend(check_function(func, exe))
    return findings
