"""The VM interpreter: a dispatch loop over coarse-grained instructions
(§5.2), with an explicit frame stack (recursion depth is bounded by the
model, not Python), reference-counted registers, and virtual-clock timing.

Execution is *numerically real* (kernels run NumPy) and *temporally
modeled* (the clock advances by the cost model): every run returns correct
tensors plus deterministic latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import ShapeGuardError, VMError
from repro.hardware import calibration
from repro.hardware.platforms import Platform, platform_by_name
from repro.runtime.context import ExecutionContext
from repro.tensor.device import Device
from repro.tensor.ndarray import NDArray
from repro.vm import instruction as ins
from repro.vm.executable import Executable, VMFunction
from repro.vm.objects import (
    ADTObj,
    ClosureObj,
    RegisterValue,
    StorageObj,
    TensorObj,
    VMObject,
    as_tensor,
    release_value,
    retain_value,
    scalar_of,
)
from repro.vm.profiler import VMProfile


class _Frame:
    __slots__ = ("func", "registers", "pc", "caller_dst")

    def __init__(self, func: VMFunction, caller_dst: Optional[int]) -> None:
        self.func = func
        self.registers: List[RegisterValue] = [None] * func.register_count
        self.pc = 0
        self.caller_dst = caller_dst


class VirtualMachine:
    def __init__(self, executable: Executable, ctx: Optional[ExecutionContext] = None) -> None:
        self.exe = executable
        self.ctx = ctx or ExecutionContext(platform_by_name(executable.platform_name))
        if self.ctx.platform.name != executable.platform_name:
            raise VMError(
                f"executable built for {executable.platform_name!r} cannot run on "
                f"{self.ctx.platform.name!r}"
            )
        self.profile = VMProfile()
        self._instr_us = self.ctx.platform.vm_instruction_us
        self._running = False
        # Static multi-stream schedule support (repro.vm.schedule): the
        # stream count the bytecode was scheduled for, the per-run sync
        # event table (event_index -> recorded timestamp), and the
        # calibrated host/device costs of the sync primitives.
        self._num_streams = max(1, executable.device_streams)
        self._events: Dict[int, float] = {}
        self._stream_offset = 0
        name = self.ctx.platform.name
        self._event_record_us = calibration.STREAM_EVENT_RECORD_US[name]
        self._wait_event_us = calibration.STREAM_WAIT_EVENT_US[name]
        self._event_sync_us = calibration.STREAM_EVENT_SYNC_US[name]

    # ------------------------------------------------------------------ public
    def run(
        self,
        *inputs,
        entry: Optional[str] = None,
        sync: bool = True,
        stream_offset: int = 0,
    ):
        """Invoke the entry function; returns NDArray / nested tuples.

        ``sync=False`` skips the final device synchronization: the host
        returns as soon as the last kernel is enqueued, so a subsequent
        ``run`` on the same VM overlaps its host-side dispatch with the
        device queue of this one. The serving layer uses this to pipeline
        the members of a batch and synchronize once per batch.

        ``stream_offset`` rotates the executable's static stream
        assignment (kernels *and* events move together, so the schedule
        stays internally consistent): pipelined callers offset successive
        members so independent runs land on different streams and their
        device work overlaps. A no-op on single-stream builds.
        """
        if self._running:
            raise VMError(
                "VirtualMachine.run is not re-entrant; use one VM per worker"
            )
        name = entry or self.exe.entry
        try:
            index = self.exe.func_index[name]
        except KeyError:
            raise VMError(f"executable has no function {name!r}") from None
        func = self.exe.functions[index]
        if len(inputs) != func.num_params:
            raise VMError(
                f"{name} expects {func.num_params} inputs, got {len(inputs)}"
            )
        if name == self.exe.entry:
            mismatch = self.exe.guard_mismatch(inputs)
            if mismatch is not None:
                raise ShapeGuardError(
                    f"{name}: {mismatch}; the serving layer should have "
                    f"deopted this call to the dynamic tier"
                )
        frame = _Frame(func, caller_dst=None)
        for i, value in enumerate(inputs):
            frame.registers[i] = self._wrap_input(value)
        self._stream_offset = stream_offset % self._num_streams
        self._events.clear()
        self._running = True
        try:
            result = self._dispatch_loop(frame)
        finally:
            self._running = False
        self.profile.record_run()
        if sync:
            self.ctx.clock.sync_all()
        unwrapped = self._unwrap(result)
        # The unwrap copied the data out; drop the VM's last reference so
        # the result buffer returns to the allocator pool.
        release_value(result)
        return unwrapped

    def run_with_latency(self, *inputs, entry: Optional[str] = None):
        """(result, latency_us) for one inference.

        The clock is *not* reset: the latency is the elapsed-µs delta on
        the context's running clock across this call, so the method is
        safe to interleave with other work on the same context (earlier
        time is never re-counted, and device queues keep their state).
        """
        start = self.ctx.clock.elapsed_us
        result = self.run(*inputs, entry=entry)
        return result, self.ctx.clock.elapsed_us - start

    # ------------------------------------------------------------ dispatch loop
    def _dispatch_loop(self, root: _Frame) -> RegisterValue:
        stack: List[_Frame] = [root]
        try:
            return self._run_frames(stack)
        except BaseException:
            # An error mid-dispatch must not leak buffers: drop every live
            # frame so their registers' refcounts drain and pooled storage
            # returns to the allocator.
            while stack:
                self._release_frame(stack.pop())
            raise

    def _run_frames(self, stack: List[_Frame]) -> RegisterValue:
        final: RegisterValue = None
        clock = self.ctx.clock
        while stack:
            frame = stack[-1]
            if frame.pc >= len(frame.func.instructions):
                raise VMError(f"fell off the end of {frame.func.name}")
            instr = frame.func.instructions[frame.pc]
            opcode = instr.opcode
            self.profile.record_instruction(opcode.name, self._instr_us)
            clock.host_advance(self._instr_us)
            regs = frame.registers

            if opcode == ins.Opcode.MOVE:
                self._set(regs, instr.dst, retain_value(regs[instr.src]))
            elif opcode == ins.Opcode.RET:
                result = regs[instr.result]
                if isinstance(result, VMObject):
                    result.retain()
                self._release_frame(frame)
                stack.pop()
                if stack:
                    caller = stack[-1]
                    self._set(caller.registers, frame.caller_dst, result)
                else:
                    final = result
                continue
            elif opcode == ins.Opcode.INVOKE:
                callee = self.exe.functions[instr.func_index]
                new_frame = _Frame(callee, caller_dst=instr.dst)
                for i, arg in enumerate(instr.args):
                    new_frame.registers[i] = retain_value(regs[arg])
                frame.pc += 1
                stack.append(new_frame)
                continue
            elif opcode == ins.Opcode.INVOKE_CLOSURE:
                closure = regs[instr.closure]
                if not isinstance(closure, ClosureObj):
                    raise VMError("InvokeClosure on a non-closure object")
                callee = self.exe.functions[closure.func_index]
                new_frame = _Frame(callee, caller_dst=instr.dst)
                pos = 0
                for arg in instr.args:
                    new_frame.registers[pos] = retain_value(regs[arg])
                    pos += 1
                for captured in closure.captured:
                    new_frame.registers[pos] = retain_value(captured)
                    pos += 1
                frame.pc += 1
                stack.append(new_frame)
                continue
            elif opcode == ins.Opcode.INVOKE_PACKED:
                self._invoke_packed(instr, regs)
            elif opcode == ins.Opcode.ALLOC_STORAGE:
                nbytes = self._read_scalar(regs[instr.allocation_size])
                storage = self.ctx.allocator.alloc(nbytes, instr.alignment, instr.device)
                self.profile.alloc_time_us = self.ctx.allocator.stats.alloc_time_us
                self._set(regs, instr.dst, StorageObj(storage, on_free=self.ctx.allocator.free))
            elif opcode == ins.Opcode.ALLOC_TENSOR:
                self._alloc_tensor(regs, instr.storage, instr.offset, instr.shape, instr.dtype, instr.dst)
            elif opcode == ins.Opcode.ALLOC_TENSOR_REG:
                shape_obj = as_tensor(regs[instr.shape_register], "AllocTensorReg shape")
                shape = tuple(int(d) for d in shape_obj.data)
                self._alloc_tensor(regs, instr.storage, instr.offset, shape, instr.dtype, instr.dst)
            elif opcode == ins.Opcode.ALLOC_ADT:
                fields = [regs[r] for r in instr.fields]
                self._set(regs, instr.dst, ADTObj(instr.tag, fields))
            elif opcode == ins.Opcode.ALLOC_CLOSURE:
                captured = [regs[r] for r in instr.captured]
                self._set(regs, instr.dst, ClosureObj(instr.func_index, captured))
            elif opcode == ins.Opcode.GET_FIELD:
                obj = regs[instr.obj]
                if not isinstance(obj, ADTObj):
                    raise VMError("GetField on a non-ADT object")
                if not 0 <= instr.field_index < len(obj.fields):
                    raise VMError(
                        f"GetField index {instr.field_index} out of range "
                        f"({len(obj.fields)} fields)"
                    )
                self._set(regs, instr.dst, retain_value(obj.fields[instr.field_index]))
            elif opcode == ins.Opcode.GET_TAG:
                obj = regs[instr.obj]
                if not isinstance(obj, ADTObj):
                    raise VMError("GetTag on a non-ADT object")
                self._set(regs, instr.dst, obj.tag)
            elif opcode == ins.Opcode.IF:
                test = self._read_scalar(regs[instr.test])
                target = self._read_scalar(regs[instr.target])
                frame.pc += instr.true_offset if test == target else instr.false_offset
                continue
            elif opcode == ins.Opcode.GOTO:
                frame.pc += instr.pc_offset
                continue
            elif opcode == ins.Opcode.LOAD_CONST:
                arr = self.exe.constants[instr.const_index]
                self._set(regs, instr.dst, TensorObj(arr))
            elif opcode == ins.Opcode.LOAD_CONSTI:
                self._set(regs, instr.dst, instr.value)
            elif opcode == ins.Opcode.DEVICE_COPY:
                self._device_copy(instr, regs)
            elif opcode == ins.Opcode.SHAPE_OF:
                tensor = as_tensor(regs[instr.tensor], "ShapeOf")
                shape = np.asarray(tensor.shape, dtype=np.int64)
                self._set(regs, instr.dst, TensorObj(NDArray(shape, self.ctx.platform.host)))
            elif opcode == ins.Opcode.RESHAPE_TENSOR:
                tensor = as_tensor(regs[instr.tensor], "ReshapeTensor data")
                shape_obj = as_tensor(regs[instr.newshape], "ReshapeTensor shape")
                newshape = tuple(int(d) for d in shape_obj.data)
                reshaped = TensorObj(tensor.array.reshape(newshape), tensor.storage_obj)
                self._set(regs, instr.dst, reshaped)
            elif opcode == ins.Opcode.FATAL:
                raise VMError(f"VM fatal: {instr.message}")
            elif opcode == ins.Opcode.STREAM_EVENT:
                stream = (instr.stream + self._stream_offset) % self._num_streams
                self._events[instr.event_index] = clock.record_event(
                    instr.device, stream, self._event_record_us
                )
                self.profile.record_sync_event()
            elif opcode == ins.Opcode.STREAM_WAIT:
                ts = self._events.get(instr.event_index)
                if ts is not None:
                    stream = (instr.stream + self._stream_offset) % self._num_streams
                    stall = clock.wait_event(
                        instr.device,
                        stream,
                        ts,
                        self._wait_event_us,
                        self._event_sync_us,
                    )
                    self.profile.record_sync_wait(stall)
            else:  # pragma: no cover - exhaustive
                raise VMError(f"unknown opcode {opcode}")
            frame.pc += 1
        return final

    # --------------------------------------------------------------- helpers
    def _set(self, regs: List[RegisterValue], dst: Optional[int], value: RegisterValue) -> None:
        if dst is None:
            release_value(value)
            return
        release_value(regs[dst])
        regs[dst] = value

    def _release_frame(self, frame: _Frame) -> None:
        for value in frame.registers:
            release_value(value)

    def _wrap_input(self, value) -> RegisterValue:
        if isinstance(value, TensorObj):
            return value
        if isinstance(value, ADTObj):
            return value
        if isinstance(value, NDArray):
            return TensorObj(value)
        if isinstance(value, np.ndarray):
            return TensorObj(NDArray(value, self.ctx.platform.compute))
        if isinstance(value, (int, float, bool, np.generic)):
            return TensorObj(NDArray(np.asarray(value)))
        raise VMError(f"cannot pass {type(value).__name__} to the VM")

    def _unwrap(self, value: RegisterValue):
        if isinstance(value, TensorObj):
            return NDArray(value.data.copy(), value.device)
        if isinstance(value, ADTObj):
            return tuple(self._unwrap(f) for f in value.fields)
        if isinstance(value, int):
            return value
        return value

    def _read_scalar(self, value: RegisterValue) -> int:
        if isinstance(value, TensorObj) and value.device.is_gpu:
            # Host reads of device values synchronize the queue.
            self.ctx.clock.sync(value.device)
        return scalar_of(value)

    def _alloc_tensor(self, regs, storage_reg: int, offset_reg: int, shape, dtype: str, dst: int) -> None:
        storage_obj = regs[storage_reg]
        if not isinstance(storage_obj, StorageObj):
            raise VMError("AllocTensor on a non-storage object")
        offset = self._read_scalar(regs[offset_reg])
        array = NDArray.from_storage(storage_obj.storage, offset, shape, dtype)
        self._set(regs, dst, TensorObj(array, storage_obj))

    def _device_copy(self, instr: ins.DeviceCopy, regs) -> None:
        tensor = as_tensor(regs[instr.src], "DeviceCopy")
        clock = self.ctx.clock
        spec = None
        if instr.src_device.is_gpu or instr.dst_device.is_gpu:
            gpu_dev = instr.src_device if instr.src_device.is_gpu else instr.dst_device
            spec = self.ctx.platform.spec_of(gpu_dev)
        if instr.src_device.is_gpu:
            clock.sync(instr.src_device)
        if spec is not None:
            cost = spec.copy_latency_us + tensor.array.nbytes / (spec.copy_bw_gbps * 1e3)
        else:
            host = self.ctx.platform.host_spec
            cost = tensor.array.nbytes / (host.dram_bw_gbps * 1e3)
        clock.host_advance(cost)
        self.profile.copy_time_us += cost
        copied = TensorObj(tensor.array.to_device(instr.dst_device))
        self._set(regs, instr.dst, copied)

    def _invoke_packed(self, instr: ins.InvokePacked, regs) -> None:
        kernel = self.exe.kernels[instr.packed_index]
        num_inputs = instr.arity - instr.output_size
        in_objs = [as_tensor(regs[r], "kernel input") for r in instr.args[:num_inputs]]
        out_objs = [as_tensor(regs[r], "kernel output") for r in instr.args[num_inputs:]]
        clock = self.ctx.clock

        if instr.kind == "shape_func":
            info = kernel.info
            if info.mode.value == "data_dependent":
                in_shapes = [t.shape for t in in_objs]
                in_values = [t.data for t in in_objs]
            else:
                # Inputs are shape vectors produced by ShapeOf.
                in_shapes = [tuple(int(d) for d in t.data) for t in in_objs]
                in_values = None
            cost = kernel.cost_us(in_values)
            clock.host_advance(cost)
            self.profile.record_shape_func(cost)
            results = kernel.run(in_shapes, in_values)
            for out, result in zip(out_objs, results):
                np.copyto(out.data, result)
            return

        in_shapes = [t.shape for t in in_objs]
        invocation = kernel.invoke_cost(in_shapes)
        device = instr.device
        spec = self.ctx.platform.spec_of(device)
        stream = 0
        if device.is_gpu:
            stream = (instr.stream + self._stream_offset) % self._num_streams
            clock.launch_async(
                device, invocation.duration_us, spec.host_launch_us, stream
            )
        else:
            clock.run_sync(invocation.duration_us)
        if instr.kind == "host_scalar":
            self.profile.host_scalar_time_us += invocation.duration_us
        else:
            self.profile.record_kernel(
                invocation.duration_us, invocation.impl,
                getattr(kernel, "name", "?"), stream,
            )

        # Lite numerics: large, data-independent compute kernels skip the
        # NumPy execution — output buffers already have the right shapes
        # (allocated through shape functions) and latency was modeled above.
        if (
            self.ctx.numerics == "lite"
            and instr.kind == "compute"
            and invocation.flops > 1e4
            and not kernel.info.is_dynamic
        ):
            return

        results = kernel.run([t.data for t in in_objs])
        if len(results) != len(out_objs):
            raise VMError(
                f"kernel {getattr(kernel, 'name', '?')} produced {len(results)} "
                f"outputs for {len(out_objs)} buffers"
            )
        for out, result in zip(out_objs, results):
            if out.data.shape != result.shape:
                raise VMError(
                    f"kernel output shape {result.shape} does not fit buffer "
                    f"{out.data.shape}"
                )
            np.copyto(out.data, result)
