"""IR → bytecode compilation (§5.1).

Consumes a module that has been through the full dynamic pipeline (typing,
fusion, ANF, manifest allocation, memory planning, device placement) and
emits :class:`Executable` bytecode:

* kernel invocations (``vm.invoke_mut``) become ``InvokePacked`` over a
  packed-function table holding :class:`KernelSet`s (compute) and
  :class:`ShapeFuncKernel`s (shape functions);
* memory dialect ops become the Alloc* instructions; ``memory.kill``
  lowers to clobbering the register (the refcount drop releases storage);
* ``if`` lowers to the register-equality ``If`` + ``Goto``; ``match``
  lowers to ``GetTag`` + tag tests + ``GetField`` destructuring;
* recursion through GlobalVars becomes ``Invoke`` on the function table.

Registers are virtual and single-assignment per binding (the "infinite
register file" of §5.1), which keeps the compiler a single forward walk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple as PyTuple

from repro.codegen.kernels import KernelCache
from repro.codegen.schedule import Schedule
from repro.codegen.tuner import AutoTuner, SymbolicTuner
from repro.errors import CompilerError
from repro.hardware.platforms import Platform
from repro.ir.analysis import structural_hash
from repro.ir.expr import (
    Call,
    Constant,
    Constructor,
    Expr,
    Function,
    GlobalVar,
    If as IRIf,
    Let,
    Match,
    Pattern,
    PatternConstructor,
    PatternVar,
    PatternWildcard,
    Tuple as IRTuple,
    TupleGetItem,
    Var,
)
from repro.ir.module import IRModule
from repro.ir.op import Op
from repro.tensor.ndarray import NDArray
from repro.vm import instruction as ins
from repro.vm.executable import Executable, VMFunction
from repro.vm.objects import ADTObj


class CompilerOptions:
    """Knobs for ablations (Figure 3 and the microbenchmarks)."""

    def __init__(
        self,
        tune: bool = False,
        num_dispatch_kernels: Optional[int] = None,
        allow_library: bool = True,
        schedule: Optional[Schedule] = None,
        tuning_trials: int = 96,
        specialized_shapes: Optional[tuple] = None,
        specialized_batch: Optional[int] = None,
        device_streams: int = 1,
        verify: bool = True,
    ) -> None:
        self.tune = tune
        self.num_dispatch_kernels = num_dispatch_kernels
        self.allow_library = allow_library
        self.schedule = schedule
        self.tuning_trials = tuning_trials
        # How many device streams to schedule kernels onto ahead of time
        # (repro.vm.schedule). Clamped to the platform's stream count at
        # compile time; 1 (or any CPU platform) means the scheduling pass
        # never runs and the bytecode is exactly the single-lane build.
        self.device_streams = device_streams
        # Set by ``nimble.specialize``: the entry shapes this build was
        # statically specialized to (stamped onto the Executable so the
        # serving tier and serialized artifacts can identify it), plus the
        # batch granularity when the build stacks that many members per
        # call. ``specialized_shapes`` stays in *member* terms — the batch
        # is a separate marker so (member shape, batch) variants never
        # alias.
        self.specialized_shapes = specialized_shapes
        self.specialized_batch = specialized_batch
        # Run the static verifiers (repro.analysis) on the finished
        # executable and raise VerificationError on any error finding.
        # Default on: verification costs <5% of a compile
        # (benchmarks/bench_verify.py) and turns scheduler/memory-plan
        # bugs into compile-time failures instead of wrong answers.
        self.verify = verify


class _FnCtx:
    def __init__(self) -> None:
        self.instructions: List[ins.Instruction] = []
        self.env: Dict[Var, int] = {}
        self.reg_count = 0
        self._unit_reg: Optional[int] = None

    def new_reg(self) -> int:
        reg = self.reg_count
        self.reg_count += 1
        return reg

    def emit(self, instr: ins.Instruction) -> None:
        self.instructions.append(instr)

    def unit_reg(self) -> int:
        if self._unit_reg is None:
            self._unit_reg = self.new_reg()
            self.emit(ins.LoadConsti(0, self._unit_reg))
        return self._unit_reg


class VMCompiler:
    def __init__(
        self,
        platform: Platform,
        options: Optional[CompilerOptions] = None,
        kernel_cache: Optional[KernelCache] = None,
    ) -> None:
        self.platform = platform
        self.options = options or CompilerOptions()
        # `or` would discard an *empty* shared cache (KernelCache defines
        # __len__, so a fresh cache is falsy) and silently compile into a
        # private one — an explicit None check keeps sharing intact.
        self.kernel_cache = KernelCache() if kernel_cache is None else kernel_cache
        self._constants: List[NDArray] = []
        self._const_index: Dict[int, int] = {}
        self._kernels: list = []
        self._packed_index: Dict[tuple, int] = {}
        self._schedule_cache: Dict[tuple, Schedule] = {}

    # ------------------------------------------------------------------ driver
    def compile(self, mod: IRModule) -> Executable:
        names = [gv.name_hint for gv, f in mod.functions.items() if not f.is_primitive]
        func_index = {name: i for i, name in enumerate(names)}
        functions: List[VMFunction] = []
        for gv, func in mod.functions.items():
            if func.is_primitive:
                continue
            functions.append(self.compile_function(gv.name_hint, func, func_index))
        exe = Executable(
            platform_name=self.platform.name,
            functions=functions,
            func_index=func_index,
            constants=self._constants,
            kernels=self._kernels,
            specialized_shapes=self.options.specialized_shapes,
            specialized_batch=self.options.specialized_batch,
        )
        # AOT multi-stream scheduling pass: a bytecode-to-bytecode rewrite
        # over the finished executable. The requested stream count is
        # clamped to the hardware (CPU platforms clamp to 1), so the pass
        # is a guaranteed no-op wherever streams cannot overlap.
        streams = self.platform.effective_streams(self.options.device_streams)
        if streams > 1:
            from repro.vm.schedule import schedule_executable

            schedule_executable(exe, streams)
        if self.options.verify:
            from repro.analysis import assert_verified

            assert_verified(exe, context="(freshly compiled)")
        return exe

    # ------------------------------------------------------------- per function
    def compile_function(self, name: str, func: Function, func_index: Dict[str, int]) -> VMFunction:
        ctx = _FnCtx()
        self._func_index = func_index
        for param in func.params:
            ctx.env[param] = ctx.new_reg()
        result = self.compile_scope(func.body, ctx)
        ctx.emit(ins.Ret(result))
        return VMFunction(name, len(func.params), ctx.instructions, ctx.reg_count)

    # --------------------------------------------------------------------- scopes
    def compile_scope(self, expr: Expr, ctx: _FnCtx) -> int:
        node: Expr = expr
        while isinstance(node, Let):
            ctx.env[node.var] = self.compile_value(node.var, node.value, ctx)
            node = node.body
        return self.compile_atom(node, ctx)

    def compile_atom(self, expr: Expr, ctx: _FnCtx) -> int:
        if isinstance(expr, Var):
            try:
                return ctx.env[expr]
            except KeyError:
                raise CompilerError(f"unbound variable %{expr.name_hint} at VM compile") from None
        if isinstance(expr, Constant):
            reg = ctx.new_reg()
            ctx.emit(ins.LoadConst(self.const_index(expr), reg))
            return reg
        raise CompilerError(f"expected an atom, got {type(expr).__name__}")

    # --------------------------------------------------------------------- values
    def compile_value(self, var: Var, value: Expr, ctx: _FnCtx) -> int:
        if isinstance(value, Var):
            dst = ctx.new_reg()
            ctx.emit(ins.Move(ctx.env[value], dst))
            return dst
        if isinstance(value, Constant):
            return self.compile_atom(value, ctx)
        if isinstance(value, IRTuple):
            fields = tuple(self.compile_atom(f, ctx) for f in value.fields)
            dst = ctx.new_reg()
            ctx.emit(ins.AllocADT(ADTObj.TUPLE_TAG, len(fields), fields, dst))
            return dst
        if isinstance(value, TupleGetItem):
            obj = self.compile_atom(value.tuple_value, ctx)
            dst = ctx.new_reg()
            ctx.emit(ins.GetField(obj, value.index, dst))
            return dst
        if isinstance(value, IRIf):
            return self.compile_if(value, ctx)
        if isinstance(value, Match):
            return self.compile_match(value, ctx)
        if isinstance(value, Call):
            return self.compile_call(value, ctx)
        if isinstance(value, Function):
            raise CompilerError(
                "function literal reached the VM compiler; run LambdaLift first"
            )
        raise CompilerError(f"cannot compile value {type(value).__name__}")

    # ----------------------------------------------------------------------- calls
    def compile_call(self, call: Call, ctx: _FnCtx) -> int:
        op = call.op
        if isinstance(op, Op):
            return self.compile_dialect(call, ctx)
        if isinstance(op, Constructor):
            fields = tuple(self.compile_atom(a, ctx) for a in call.args)
            dst = ctx.new_reg()
            ctx.emit(ins.AllocADT(op.tag, len(fields), fields, dst))
            return dst
        if isinstance(op, GlobalVar):
            args = tuple(self.compile_atom(a, ctx) for a in call.args)
            dst = ctx.new_reg()
            try:
                index = self._func_index[op.name_hint]
            except KeyError:
                raise CompilerError(f"call to unknown function @{op.name_hint}") from None
            ctx.emit(ins.Invoke(index, args, dst))
            return dst
        if isinstance(op, Var):
            closure = ctx.env[op]
            args = tuple(self.compile_atom(a, ctx) for a in call.args)
            dst = ctx.new_reg()
            ctx.emit(ins.InvokeClosure(closure, args, dst))
            return dst
        if isinstance(op, Function):
            raise CompilerError(
                "direct primitive call reached the VM compiler; run ManifestAlloc"
            )
        raise CompilerError(f"cannot compile call to {type(op).__name__}")

    def compile_dialect(self, call: Call, ctx: _FnCtx) -> int:
        name = call.op.name  # type: ignore[union-attr]
        if name == "memory.alloc_storage":
            size = self.compile_atom(call.args[0], ctx)
            dst = ctx.new_reg()
            ctx.emit(
                ins.AllocStorage(
                    size,
                    call.attrs.get("alignment", 64),
                    call.attrs.get("device", self.platform.host),
                    dst,
                )
            )
            return dst
        if name == "memory.alloc_tensor":
            storage = self.compile_atom(call.args[0], ctx)
            offset = self.compile_atom(call.args[1], ctx)
            dtype = call.attrs["ttype"].dtype
            dst = ctx.new_reg()
            const_shape = call.attrs.get("const_shape")
            if const_shape is not None:
                ctx.emit(
                    ins.AllocTensor(storage, offset, tuple(int(d) for d in const_shape), dtype, dst)
                )
            else:
                shape_reg = self.compile_atom(call.args[2], ctx)
                ctx.emit(ins.AllocTensorReg(storage, offset, shape_reg, dtype, dst))
            return dst
        if name == "memory.kill":
            victim = call.args[0]
            if isinstance(victim, Var) and victim in ctx.env:
                # Clobber the register: the refcount drop releases storage.
                ctx.emit(ins.LoadConsti(0, ctx.env[victim]))
            return ctx.unit_reg()
        if name == "vm.invoke_mut":
            return self.compile_invoke_mut(call, ctx)
        if name == "vm.shape_of":
            tensor = self.compile_atom(call.args[0], ctx)
            dst = ctx.new_reg()
            ctx.emit(ins.ShapeOf(tensor, dst))
            return dst
        if name == "device.device_copy":
            src = self.compile_atom(call.args[0], ctx)
            dst = ctx.new_reg()
            ctx.emit(
                ins.DeviceCopy(src, dst, call.attrs["src_device"], call.attrs["dst_device"])
            )
            return dst
        if name == "vm.alloc_closure":
            gv = call.args[0]
            if not isinstance(gv, GlobalVar):
                raise CompilerError("alloc_closure expects a lifted GlobalVar")
            captured = tuple(self.compile_atom(a, ctx) for a in call.args[1:])
            dst = ctx.new_reg()
            try:
                index = self._func_index[gv.name_hint]
            except KeyError:
                raise CompilerError(f"closure over unknown function @{gv.name_hint}") from None
            ctx.emit(ins.AllocClosure(index, len(captured), captured, dst))
            return dst
        if name == "vm.reshape_tensor":
            tensor = self.compile_atom(call.args[0], ctx)
            shape = self.compile_atom(call.args[1], ctx)
            dst = ctx.new_reg()
            ctx.emit(ins.ReshapeTensor(tensor, shape, dst))
            return dst
        raise CompilerError(f"dialect op {name} not lowerable directly")

    def compile_invoke_mut(self, call: Call, ctx: _FnCtx) -> int:
        prim, inputs, outputs = call.args
        if not isinstance(prim, Function) or not isinstance(inputs, IRTuple) or not isinstance(outputs, IRTuple):
            raise CompilerError("malformed vm.invoke_mut")
        kind = call.attrs.get("kind", "compute")
        device = call.attrs.get("device", self.platform.compute)
        in_regs = tuple(self.compile_atom(a, ctx) for a in inputs.fields)
        out_regs = tuple(self.compile_atom(a, ctx) for a in outputs.fields)
        index = self.packed_index(prim, kind, device)
        ctx.emit(
            ins.InvokePacked(
                index,
                arity=len(in_regs) + len(out_regs),
                output_size=len(out_regs),
                args=in_regs + out_regs,
                device=device,
                kind=kind,
            )
        )
        return ctx.unit_reg()

    # ------------------------------------------------------------------- control
    def compile_if(self, iff: IRIf, ctx: _FnCtx) -> int:
        cond = self.compile_atom(iff.cond, ctx)
        one = ctx.new_reg()
        ctx.emit(ins.LoadConsti(1, one))
        out = ctx.new_reg()
        if_pos = len(ctx.instructions)
        ctx.emit(ins.If(cond, one, 0, 0))  # offsets patched below
        true_result = self.compile_scope(iff.true_branch, ctx)
        ctx.emit(ins.Move(true_result, out))
        goto_pos = len(ctx.instructions)
        ctx.emit(ins.Goto(0))  # patched
        false_start = len(ctx.instructions)
        false_result = self.compile_scope(iff.false_branch, ctx)
        ctx.emit(ins.Move(false_result, out))
        end = len(ctx.instructions)
        ctx.instructions[if_pos] = ins.If(cond, one, 1, false_start - if_pos)
        ctx.instructions[goto_pos] = ins.Goto(end - goto_pos)
        return out

    def compile_match(self, match: Match, ctx: _FnCtx) -> int:
        data = self.compile_atom(match.data, ctx)
        tag = ctx.new_reg()
        ctx.emit(ins.GetTag(data, tag))
        out = ctx.new_reg()
        end_gotos: List[int] = []
        pending_if: Optional[int] = None
        for clause in match.clauses:
            clause_start = len(ctx.instructions)
            if pending_if is not None:
                prev = ctx.instructions[pending_if]
                ctx.instructions[pending_if] = ins.If(
                    prev.test, prev.target, 1, clause_start - pending_if
                )
                pending_if = None
            pattern = clause.pattern
            if isinstance(pattern, PatternConstructor):
                want = ctx.new_reg()
                ctx.emit(ins.LoadConsti(pattern.constructor.tag, want))
                pending_if = len(ctx.instructions)
                ctx.emit(ins.If(tag, want, 0, 0))
                self.bind_pattern_fields(pattern, data, ctx)
            elif isinstance(pattern, PatternVar):
                ctx.env[pattern.var] = data
            # Wildcard: no test, no binding.
            result = self.compile_scope(clause.rhs, ctx)
            ctx.emit(ins.Move(result, out))
            end_gotos.append(len(ctx.instructions))
            ctx.emit(ins.Goto(0))
        tail_start = len(ctx.instructions)
        if pending_if is not None:
            prev = ctx.instructions[pending_if]
            ctx.instructions[pending_if] = ins.If(
                prev.test, prev.target, 1, tail_start - pending_if
            )
        ctx.emit(ins.Fatal("no matching clause"))
        end = len(ctx.instructions)
        for pos in end_gotos:
            ctx.instructions[pos] = ins.Goto(end - pos)
        return out

    def bind_pattern_fields(self, pattern: PatternConstructor, obj_reg: int, ctx: _FnCtx) -> None:
        for i, sub in enumerate(pattern.patterns):
            if isinstance(sub, PatternWildcard):
                continue
            field = ctx.new_reg()
            ctx.emit(ins.GetField(obj_reg, i, field))
            if isinstance(sub, PatternVar):
                ctx.env[sub.var] = field
            elif isinstance(sub, PatternConstructor):
                # Nested constructor patterns would need their own tag test
                # sequencing; the dynamic models only use one level.
                raise CompilerError("nested constructor patterns are not supported")

    # ------------------------------------------------------------------ resources
    def const_index(self, const: Constant) -> int:
        key = id(const.value)
        found = self._const_index.get(key)
        if found is None:
            found = len(self._constants)
            self._constants.append(const.value)
            self._const_index[key] = found
        return found

    def packed_index(self, prim: Function, kind: str, device) -> int:
        from repro.codegen.kernels import prim_signature

        # The signature component keeps shape-specialized prims apart from
        # structurally identical symbolic ones (see prim_signature).
        key = (structural_hash(prim), prim_signature(prim), kind)
        found = self._packed_index.get(key)
        if found is not None:
            return found
        if kind == "shape_func":
            kernel = self.kernel_cache.shape_func(prim, self.platform)
        else:
            spec = self.platform.spec_of(device)
            schedule = self.options.schedule
            if schedule is None and self.options.tune:
                schedule = self._tuned_schedule(prim, spec)
            kernel = self.kernel_cache.kernel(
                prim,
                self.platform,
                spec,
                schedule=schedule,
                num_dispatch_kernels=self.options.num_dispatch_kernels,
                allow_library=self.options.allow_library,
            )
        index = len(self._kernels)
        self._kernels.append(kernel)
        self._packed_index[key] = index
        return index

    def _tuned_schedule(self, prim: Function, spec) -> Schedule:
        from repro.codegen.kernels import is_symbolic_prim, prim_signature

        key = (structural_hash(prim), prim_signature(prim))
        cached = self._schedule_cache.get(key)
        if cached is not None:
            return cached
        seed = key[0] & 0xFFFF
        try:
            if is_symbolic_prim(prim):
                tuner = SymbolicTuner(prim, self.platform, spec, seed=seed)
                schedule = tuner.tune(n_trials=self.options.tuning_trials)
            else:
                tuner = AutoTuner(prim, self.platform, spec, seed=seed, symbolic=False)
                records = tuner.tune(m=0, n_trials=self.options.tuning_trials)
                schedule = records[0].schedule
        except Exception:
            schedule = Schedule()
        self._schedule_cache[key] = schedule
        return schedule


def compile_module(
    mod: IRModule,
    platform: Platform,
    options: Optional[CompilerOptions] = None,
    kernel_cache: Optional[KernelCache] = None,
) -> Executable:
    """Convenience wrapper used by the top-level ``nimble.compile``."""
    return VMCompiler(platform, options, kernel_cache).compile(mod)
