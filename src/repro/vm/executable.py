"""The VM executable: platform-independent bytecode + platform-dependent
kernels + constant pool (§5, Figure 2).

Bytecode and constants serialize to a compact custom binary format
(magic + sections, varint-encoded instructions); kernels — which in the
real system are machine code — serialize as a pickled section carrying
their fused-function IR and schedules, from which they are re-materialized
at load time. ``save``/``load`` round-trip is exercised by property tests.
"""

from __future__ import annotations

import io
import pickle
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import SerializationError, VMError
from repro.tensor.device import Device, DeviceKind
from repro.tensor.dtype import to_numpy_dtype
from repro.tensor.ndarray import NDArray
from repro.vm import instruction as ins

MAGIC = b"NMBL"
# v2 appended the specialization-marker section (tiered compilation);
# v3 appended the batch-granularity marker (batch-specialized tier).
VERSION = 3


@dataclass
class VMFunction:
    name: str
    num_params: int
    instructions: List[ins.Instruction]
    register_count: int


@dataclass
class Executable:
    platform_name: str
    functions: List[VMFunction]
    func_index: Dict[str, int]
    constants: List[NDArray]
    kernels: list  # KernelSet | ShapeFuncKernel, indexed by InvokePacked
    entry: str = "main"
    # For a statically specialized executable (``nimble.specialize``):
    # the concrete entry-parameter shapes it was compiled for, with None
    # marking dims/params left dynamic. None for a fully dynamic build.
    # Shapes are in *member* terms even for a batch-specialized build;
    # ``specialized_batch`` carries how many same-shape members one call
    # stacks (None / 1 for member-wise builds), so (shape, batch)
    # variants are distinguishable — a batch-cap change must never alias
    # an old variant.
    specialized_shapes: Optional[tuple] = None
    specialized_batch: Optional[int] = None

    @property
    def is_specialized(self) -> bool:
        return self.specialized_shapes is not None

    @property
    def is_batch_specialized(self) -> bool:
        return self.specialized_batch is not None and self.specialized_batch > 1

    # ------------------------------------------------------------- statistics
    @property
    def num_instructions(self) -> int:
        return sum(len(f.instructions) for f in self.functions)

    def bytecode_size_bytes(self) -> int:
        return len(self._serialize_bytecode())

    def kernel_code_size_bytes(self) -> int:
        return sum(getattr(k, "code_size_bytes", 512) for k in self.kernels)

    # ------------------------------------------------------------ serialization
    def save(self) -> bytes:
        out = io.BytesIO()
        out.write(MAGIC)
        out.write(struct.pack("<H", VERSION))
        _write_bytes(out, self.platform_name.encode())
        _write_bytes(out, self._serialize_bytecode())
        _write_bytes(out, self._serialize_constants())
        _write_bytes(out, pickle.dumps(self.kernels))
        _write_bytes(out, self.entry.encode())
        _write_bytes(out, pickle.dumps(self.specialized_shapes))
        _write_varint(out, self.specialized_batch or 0)
        return out.getvalue()

    @staticmethod
    def load(blob: bytes) -> "Executable":
        buf = io.BytesIO(blob)
        if buf.read(4) != MAGIC:
            raise SerializationError("bad magic: not a Nimble executable")
        (version,) = struct.unpack("<H", buf.read(2))
        if version not in (2, VERSION):
            raise SerializationError(f"unsupported executable version {version}")
        platform_name = _read_bytes(buf).decode()
        functions, func_index = _deserialize_bytecode(_read_bytes(buf))
        constants = _deserialize_constants(_read_bytes(buf))
        kernels = pickle.loads(_read_bytes(buf))
        entry = _read_bytes(buf).decode()
        specialized_shapes = pickle.loads(_read_bytes(buf))
        # v2 artifacts predate the batched tier: member-wise by definition.
        specialized_batch = _read_varint(buf) if version >= 3 else 0
        return Executable(
            platform_name, functions, func_index, constants, kernels, entry,
            specialized_shapes, specialized_batch or None,
        )

    # -- bytecode section -------------------------------------------------------
    def _serialize_bytecode(self) -> bytes:
        out = io.BytesIO()
        _write_varint(out, len(self.functions))
        for func in self.functions:
            _write_bytes(out, func.name.encode())
            _write_varint(out, func.num_params)
            _write_varint(out, func.register_count)
            _write_varint(out, len(func.instructions))
            for instr in func.instructions:
                _encode_instruction(out, instr)
        return out.getvalue()

    def _serialize_constants(self) -> bytes:
        out = io.BytesIO()
        _write_varint(out, len(self.constants))
        for const in self.constants:
            arr = const.numpy()
            _write_bytes(out, str(const.dtype).encode())
            _write_varint(out, arr.ndim)
            for d in arr.shape:
                _write_varint(out, d)
            _write_bytes(out, arr.tobytes())
        return out.getvalue()


# ---------------------------------------------------------------------------
# varint / framing helpers
# ---------------------------------------------------------------------------


def _write_varint(out: io.BytesIO, value: int) -> None:
    """LEB128 with zigzag so negative jump offsets encode compactly."""
    encoded = (value << 1) ^ (value >> 63) if value < 0 else value << 1
    while True:
        byte = encoded & 0x7F
        encoded >>= 7
        if encoded:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(buf: io.BytesIO) -> int:
    shift = 0
    result = 0
    while True:
        raw = buf.read(1)
        if not raw:
            raise SerializationError("truncated varint")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
    return (result >> 1) ^ -(result & 1)


def _write_bytes(out: io.BytesIO, data: bytes) -> None:
    _write_varint(out, len(data))
    out.write(data)


def _read_bytes(buf: io.BytesIO) -> bytes:
    length = _read_varint(buf)
    data = buf.read(length)
    if len(data) != length:
        raise SerializationError("truncated section")
    return data


def _write_device(out: io.BytesIO, device: Device) -> None:
    out.write(bytes((0 if device.kind is DeviceKind.CPU else 1,)))
    _write_varint(out, device.index)


def _read_device(buf: io.BytesIO) -> Device:
    kind = DeviceKind.CPU if buf.read(1)[0] == 0 else DeviceKind.GPU
    return Device(kind, _read_varint(buf))


# ---------------------------------------------------------------------------
# instruction encoding
# ---------------------------------------------------------------------------


def _encode_instruction(out: io.BytesIO, instr: ins.Instruction) -> None:
    out.write(bytes((int(instr.opcode),)))
    if isinstance(instr, ins.Move):
        _write_varint(out, instr.src)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.Ret):
        _write_varint(out, instr.result)
    elif isinstance(instr, ins.Invoke):
        _write_varint(out, instr.func_index)
        _write_varint(out, len(instr.args))
        for a in instr.args:
            _write_varint(out, a)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.InvokeClosure):
        _write_varint(out, instr.closure)
        _write_varint(out, len(instr.args))
        for a in instr.args:
            _write_varint(out, a)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.InvokePacked):
        _write_varint(out, instr.packed_index)
        _write_varint(out, instr.arity)
        _write_varint(out, instr.output_size)
        for a in instr.args:
            _write_varint(out, a)
        _write_device(out, instr.device)
        _write_bytes(out, instr.kind.encode())
    elif isinstance(instr, ins.AllocStorage):
        _write_varint(out, instr.allocation_size)
        _write_varint(out, instr.alignment)
        _write_device(out, instr.device)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.AllocTensor):
        _write_varint(out, instr.storage)
        _write_varint(out, instr.offset)
        _write_varint(out, len(instr.shape))
        for d in instr.shape:
            _write_varint(out, d)
        _write_bytes(out, instr.dtype.encode())
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.AllocTensorReg):
        _write_varint(out, instr.storage)
        _write_varint(out, instr.offset)
        _write_varint(out, instr.shape_register)
        _write_bytes(out, instr.dtype.encode())
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.AllocADT):
        _write_varint(out, instr.tag)
        _write_varint(out, instr.num_fields)
        for f in instr.fields:
            _write_varint(out, f)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.AllocClosure):
        _write_varint(out, instr.func_index)
        _write_varint(out, instr.num_captured)
        for c in instr.captured:
            _write_varint(out, c)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.GetField):
        _write_varint(out, instr.obj)
        _write_varint(out, instr.field_index)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.GetTag):
        _write_varint(out, instr.obj)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.If):
        _write_varint(out, instr.test)
        _write_varint(out, instr.target)
        _write_varint(out, instr.true_offset)
        _write_varint(out, instr.false_offset)
    elif isinstance(instr, ins.Goto):
        _write_varint(out, instr.pc_offset)
    elif isinstance(instr, ins.LoadConst):
        _write_varint(out, instr.const_index)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.LoadConsti):
        _write_varint(out, instr.value)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.DeviceCopy):
        _write_varint(out, instr.src)
        _write_varint(out, instr.dst)
        _write_device(out, instr.src_device)
        _write_device(out, instr.dst_device)
    elif isinstance(instr, ins.ShapeOf):
        _write_varint(out, instr.tensor)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.ReshapeTensor):
        _write_varint(out, instr.tensor)
        _write_varint(out, instr.newshape)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.Fatal):
        _write_bytes(out, instr.message.encode())
    else:
        raise SerializationError(f"cannot encode {type(instr).__name__}")


def _decode_instruction(buf: io.BytesIO) -> ins.Instruction:
    opcode = ins.Opcode(buf.read(1)[0])
    rv = lambda: _read_varint(buf)
    if opcode == ins.Opcode.MOVE:
        return ins.Move(rv(), rv())
    if opcode == ins.Opcode.RET:
        return ins.Ret(rv())
    if opcode == ins.Opcode.INVOKE:
        func_index = rv()
        args = tuple(rv() for _ in range(rv()))
        return ins.Invoke(func_index, args, rv())
    if opcode == ins.Opcode.INVOKE_CLOSURE:
        closure = rv()
        args = tuple(rv() for _ in range(rv()))
        return ins.InvokeClosure(closure, args, rv())
    if opcode == ins.Opcode.INVOKE_PACKED:
        packed_index, arity, output_size = rv(), rv(), rv()
        args = tuple(rv() for _ in range(arity))
        device = _read_device(buf)
        kind = _read_bytes(buf).decode()
        return ins.InvokePacked(packed_index, arity, output_size, args, device, kind)
    if opcode == ins.Opcode.ALLOC_STORAGE:
        return ins.AllocStorage(rv(), rv(), _read_device(buf), rv())
    if opcode == ins.Opcode.ALLOC_TENSOR:
        storage, offset = rv(), rv()
        shape = tuple(rv() for _ in range(rv()))
        dtype = _read_bytes(buf).decode()
        return ins.AllocTensor(storage, offset, shape, dtype, rv())
    if opcode == ins.Opcode.ALLOC_TENSOR_REG:
        storage, offset, shape_register = rv(), rv(), rv()
        dtype = _read_bytes(buf).decode()
        return ins.AllocTensorReg(storage, offset, shape_register, dtype, rv())
    if opcode == ins.Opcode.ALLOC_ADT:
        tag, num_fields = rv(), rv()
        fields = tuple(rv() for _ in range(num_fields))
        return ins.AllocADT(tag, num_fields, fields, rv())
    if opcode == ins.Opcode.ALLOC_CLOSURE:
        func_index, num_captured = rv(), rv()
        captured = tuple(rv() for _ in range(num_captured))
        return ins.AllocClosure(func_index, num_captured, captured, rv())
    if opcode == ins.Opcode.GET_FIELD:
        return ins.GetField(rv(), rv(), rv())
    if opcode == ins.Opcode.GET_TAG:
        return ins.GetTag(rv(), rv())
    if opcode == ins.Opcode.IF:
        return ins.If(rv(), rv(), rv(), rv())
    if opcode == ins.Opcode.GOTO:
        return ins.Goto(rv())
    if opcode == ins.Opcode.LOAD_CONST:
        return ins.LoadConst(rv(), rv())
    if opcode == ins.Opcode.LOAD_CONSTI:
        return ins.LoadConsti(rv(), rv())
    if opcode == ins.Opcode.DEVICE_COPY:
        src, dst = rv(), rv()
        return ins.DeviceCopy(src, dst, _read_device(buf), _read_device(buf))
    if opcode == ins.Opcode.SHAPE_OF:
        return ins.ShapeOf(rv(), rv())
    if opcode == ins.Opcode.RESHAPE_TENSOR:
        return ins.ReshapeTensor(rv(), rv(), rv())
    if opcode == ins.Opcode.FATAL:
        return ins.Fatal(_read_bytes(buf).decode())
    raise SerializationError(f"cannot decode opcode {opcode}")


def _deserialize_bytecode(blob: bytes) -> Tuple[List[VMFunction], Dict[str, int]]:
    buf = io.BytesIO(blob)
    functions: List[VMFunction] = []
    index: Dict[str, int] = {}
    for _ in range(_read_varint(buf)):
        name = _read_bytes(buf).decode()
        num_params = _read_varint(buf)
        register_count = _read_varint(buf)
        count = _read_varint(buf)
        instructions = [_decode_instruction(buf) for _ in range(count)]
        index[name] = len(functions)
        functions.append(VMFunction(name, num_params, instructions, register_count))
    return functions, index


def _deserialize_constants(blob: bytes) -> List[NDArray]:
    buf = io.BytesIO(blob)
    out: List[NDArray] = []
    for _ in range(_read_varint(buf)):
        dtype = _read_bytes(buf).decode()
        ndim = _read_varint(buf)
        shape = tuple(_read_varint(buf) for _ in range(ndim))
        raw = _read_bytes(buf)
        arr = np.frombuffer(raw, dtype=to_numpy_dtype(dtype)).reshape(shape).copy()
        out.append(NDArray(arr))
    return out
