"""The VM executable: platform-independent bytecode + platform-dependent
kernels + constant pool (§5, Figure 2).

Bytecode and constants serialize to a compact custom binary format
(magic + sections, varint-encoded instructions); kernels — which in the
real system are machine code — serialize as a pickled section carrying
their fused-function IR and schedules, from which they are re-materialized
at load time. ``save``/``load`` round-trip is exercised by property tests
and by checked-in golden blobs (``tests/golden/executable_v{2,3}.bin``);
the byte-level format and its version history are specified in
``docs/serialization.md``.

v4 blobs additionally carry the artifact-store metadata: the source
module's :func:`repro.ir.printer.module_fingerprint` and a content hash
over (fingerprint, platform, shape binding, batch marker, serialization
version) — the key the on-disk :class:`repro.store.ArtifactStore` files
the blob under, verified again at load time.

v5 blobs carry the static multi-stream schedule (``repro.vm.schedule``):
each ``InvokePacked`` encodes its AOT-assigned stream, the two scheduling
opcodes (``StreamEvent``/``StreamWait``) serialize, and a trailing
section records ``device_streams`` and the run-time event-table size.
The stream count joins the artifact key for v5+ only, so v2–v4 blobs
keep their original keys and still verify.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import SerializationError, VMError
from repro.tensor.device import Device, DeviceKind
from repro.tensor.dtype import to_numpy_dtype
from repro.tensor.ndarray import NDArray
from repro.vm import instruction as ins

MAGIC = b"NMBL"
# v2 appended the specialization-marker section (tiered compilation);
# v3 appended the batch-granularity marker (batch-specialized tier);
# v4 appended the store-metadata section (source-module fingerprint +
# content hash) for the persistent artifact store;
# v5 appended the stream-schedule section (device_streams + event-table
# size) and gave InvokePacked an inline stream operand.
VERSION = 5
# Oldest version the loader still accepts. v1 blobs predate the
# specialization marker and cannot express what the serving tiers need;
# they are rejected as stale.
MIN_VERSION = 2


def artifact_key(
    source_signature: Optional[str],
    platform_name: str,
    specialized_shapes: Optional[tuple],
    specialized_batch: Optional[int],
    version: Optional[int] = None,
    device_streams: Optional[int] = None,
) -> str:
    """The content hash a compiled artifact is stored and validated under.

    Stable across processes: every ingredient reprs deterministically
    (``Any`` dims print as ``?``, shapes are int tuples) and the
    serialization VERSION is folded in, so a format bump changes every
    key and old blobs are never even looked up — staleness falls out of
    the keying instead of needing a migration. ``specialized_batch`` is
    normalized (None and 1 both mean member-wise) so callers cannot
    create aliasing keys for the same artifact; ``device_streams`` is
    normalized the same way (None and 1 both mean single-stream) and
    joins the key only for v5+ blobs, which is what keeps every v2–v4
    key — and therefore every already-stored artifact — valid.
    """
    batch = int(specialized_batch or 0)
    if batch == 1:
        batch = 0
    if version is None:
        version = VERSION
    streams = int(device_streams or 1)
    if version >= 5:
        payload = repr(
            (
                source_signature or "",
                platform_name,
                specialized_shapes,
                batch,
                version,
                streams,
            )
        )
    else:
        payload = repr(
            (source_signature or "", platform_name, specialized_shapes, batch, version)
        )
    return hashlib.sha256(payload.encode()).hexdigest()


def _marker_has_none(marker) -> bool:
    """True if a specialized-shape marker (int tuple for a tensor param,
    nested tuple for a tuple param) contains a None dim anywhere."""
    if marker is None:
        return True
    if isinstance(marker, tuple):
        return any(_marker_has_none(m) for m in marker)
    return False


def _guard_check(marker, value, where: str) -> Optional[str]:
    """Compare one specialized-shape marker against one runtime input.

    Tensor markers are flat tuples of int (bound — must match) or None
    (left dynamic — any extent passes); tuple-param markers nest. A
    fully-None marker means the param was not specialized at all. Inputs
    the guard cannot introspect fail open rather than blocking dispatch."""
    if marker is None:
        return None
    if not isinstance(marker, tuple):
        return None
    if marker and all(isinstance(m, (tuple, type(None))) for m in marker) and any(
        isinstance(m, tuple) for m in marker
    ):
        # Tuple-typed param: recurse into fields.
        fields = getattr(value, "fields", None)
        if fields is None and isinstance(value, (tuple, list)):
            fields = value
        if fields is None or len(fields) != len(marker):
            return None  # fail open on opaque values
        for j, (m, v) in enumerate(zip(marker, fields)):
            msg = _guard_check(m, v, f"{where}.{j}")
            if msg is not None:
                return msg
        return None
    shape = getattr(value, "shape", None)
    if shape is None:
        return None  # fail open: scalar / opaque input
    if len(shape) != len(marker):
        return (
            f"guard: {where} has rank {len(shape)} but was specialized "
            f"for rank {len(marker)}"
        )
    for d, (bound, actual) in enumerate(zip(marker, shape)):
        if bound is None:
            continue
        if int(actual) != int(bound):
            return (
                f"guard: {where} dim {d} is {int(actual)} but was "
                f"specialized for {int(bound)}"
            )
    return None


@dataclass
class VMFunction:
    name: str
    num_params: int
    instructions: List[ins.Instruction]
    register_count: int


@dataclass
class Executable:
    platform_name: str
    functions: List[VMFunction]
    func_index: Dict[str, int]
    constants: List[NDArray]
    kernels: list  # KernelSet | ShapeFuncKernel, indexed by InvokePacked
    entry: str = "main"
    # For a statically specialized executable (``nimble.specialize``):
    # the concrete entry-parameter shapes it was compiled for, with None
    # marking dims/params left dynamic. None for a fully dynamic build.
    # Shapes are in *member* terms even for a batch-specialized build;
    # ``specialized_batch`` carries how many same-shape members one call
    # stacks (None / 1 for member-wise builds), so (shape, batch)
    # variants are distinguishable — a batch-cap change must never alias
    # an old variant.
    specialized_shapes: Optional[tuple] = None
    specialized_batch: Optional[int] = None
    # Fingerprint of the *source* module this executable was compiled
    # from (``module_fingerprint`` of the dynamic module, before any
    # specialization pass) — the module-identity component of the
    # artifact-store key. None for executables built outside the public
    # API (hand-assembled tests, pre-v4 blobs).
    source_signature: Optional[str] = None
    # Static multi-stream schedule (repro.vm.schedule): how many device
    # streams the bytecode was scheduled onto (1 = unscheduled — the
    # exact single-lane model) and the size of the per-run sync-event
    # table the interpreter must provision.
    device_streams: int = 1
    num_events: int = 0

    @property
    def is_specialized(self) -> bool:
        return self.specialized_shapes is not None

    def content_hash(self, version: Optional[int] = None) -> str:
        """The artifact-store key for this executable: a stable hash of
        (source-module fingerprint, platform, shape binding, batch
        marker, serialization version, and — for v5+ — stream count).
        Recomputed and verified at v4+ load time — against the *blob's
        own* version, so a valid v4 blob still verifies under a future
        loader — so a blob whose identity metadata was tampered with, or
        that was filed under the wrong key, is rejected instead of
        silently served."""
        return artifact_key(
            self.source_signature,
            self.platform_name,
            self.specialized_shapes,
            self.specialized_batch,
            version,
            self.device_streams,
        )

    @property
    def is_batch_specialized(self) -> bool:
        return self.specialized_batch is not None and self.specialized_batch > 1

    @property
    def is_partial(self) -> bool:
        """True for a *partially* specialized executable: at least one
        dim inside ``specialized_shapes`` is None (left dynamic) while
        others are bound. Such a variant covers a family of exact shapes
        and must be entry-guarded (`guard_mismatch`) before every run."""
        if self.specialized_shapes is None:
            return False
        return any(
            _marker_has_none(marker)
            for marker in self.specialized_shapes
            if marker is not None
        )

    def guard_mismatch(self, inputs) -> Optional[str]:
        """Entry shape guard: check *inputs* against the bound dims this
        executable was specialized for.

        Returns None when every bound dim agrees (or the executable is
        not member-wise specialized — dynamic and batch-specialized
        builds have no member-shape contract to check here), otherwise a
        human-readable description of the first mismatch. The serving
        layer calls this before dispatch and transparently deopts
        mismatched members to the dynamic tier; the VM calls it again in
        ``run()`` as a hard safety net (raising ``ShapeGuardError``).
        Opaque inputs (no ``.shape``) fail open — the guard only checks
        what it can see."""
        if self.specialized_shapes is None:
            return None
        if self.specialized_batch is not None and self.specialized_batch > 1:
            return None
        if len(inputs) != len(self.specialized_shapes):
            # The marker is a per-entry-param summary; when its arity
            # disagrees with the call's (legacy golden blobs stamp a
            # marker onto zero-param entries), it does not describe
            # these inputs param-wise — fail open like any other shape
            # the guard cannot introspect. The VM's own num_params
            # check already rejects genuinely wrong-arity calls.
            return None
        for i, (marker, value) in enumerate(zip(self.specialized_shapes, inputs)):
            msg = _guard_check(marker, value, f"param {i}")
            if msg is not None:
                return msg
        return None

    # ------------------------------------------------------------- statistics
    @property
    def num_instructions(self) -> int:
        return sum(len(f.instructions) for f in self.functions)

    def bytecode_size_bytes(self) -> int:
        return len(self._serialize_bytecode())

    def kernel_code_size_bytes(self) -> int:
        return sum(getattr(k, "code_size_bytes", 512) for k in self.kernels)

    # ------------------------------------------------------------ serialization
    def save(self) -> bytes:
        out = io.BytesIO()
        out.write(MAGIC)
        out.write(struct.pack("<H", VERSION))
        _write_bytes(out, self.platform_name.encode())
        _write_bytes(out, self._serialize_bytecode())
        _write_bytes(out, self._serialize_constants())
        _write_bytes(out, pickle.dumps(self.kernels))
        _write_bytes(out, self.entry.encode())
        _write_bytes(out, pickle.dumps(self.specialized_shapes))
        _write_varint(out, self.specialized_batch or 0)
        # v4 store-metadata section: fingerprint, then the content hash
        # computed over everything identity-bearing above it.
        _write_bytes(out, (self.source_signature or "").encode())
        _write_bytes(out, self.content_hash().encode())
        # v5 stream-schedule section.
        _write_varint(out, self.device_streams)
        _write_varint(out, self.num_events)
        return out.getvalue()

    @staticmethod
    def load(
        blob: bytes, expected_signature: Optional[str] = None
    ) -> "Executable":
        """Deserialize a ``save()`` blob.

        Versions back to ``MIN_VERSION`` load (v2 predates the batch
        marker, v3 the store metadata — missing sections default);
        anything older or newer is rejected as stale rather than
        misread. v4 blobs re-verify their embedded content hash, and
        ``expected_signature`` (the artifact store passes the fingerprint
        of the module it is restoring for) rejects a blob compiled from a
        *different* module that happens to be filed at the right path.
        """
        buf = io.BytesIO(blob)
        if buf.read(4) != MAGIC:
            raise SerializationError("bad magic: not a Nimble executable")
        (version,) = struct.unpack("<H", buf.read(2))
        if not MIN_VERSION <= version <= VERSION:
            raise SerializationError(
                f"unsupported executable version {version} "
                f"(supported: {MIN_VERSION}..{VERSION})"
            )
        try:
            platform_name = _read_bytes(buf).decode()
            functions, func_index = _deserialize_bytecode(_read_bytes(buf), version)
            constants = _deserialize_constants(_read_bytes(buf))
            kernels = pickle.loads(_read_bytes(buf))
            entry = _read_bytes(buf).decode()
            specialized_shapes = pickle.loads(_read_bytes(buf))
            # v2 artifacts predate the batched tier: member-wise by
            # definition.
            specialized_batch = _read_varint(buf) if version >= 3 else 0
            source_signature = None
            stored_hash = None
            if version >= 4:
                source_signature = _read_bytes(buf).decode() or None
                stored_hash = _read_bytes(buf).decode()
            # Pre-v5 blobs predate the static scheduler: single-stream.
            device_streams = _read_varint(buf) if version >= 5 else 1
            num_events = _read_varint(buf) if version >= 5 else 0
        except SerializationError:
            raise
        except Exception as err:
            # Corruption inside a section surfaces as whatever the
            # decoder tripped over (unicode, pickle, struct, numpy
            # reshape, ...). Callers — the artifact store above all —
            # must be able to treat "bad blob" as ONE exception type:
            # anything else would turn a corrupt file into a crash.
            raise SerializationError(
                f"corrupt executable blob: {type(err).__name__}: {err}"
            ) from err
        exe = Executable(
            platform_name, functions, func_index, constants, kernels, entry,
            specialized_shapes, specialized_batch or None, source_signature,
            device_streams, num_events,
        )
        if stored_hash is not None and stored_hash != exe.content_hash(version):
            raise SerializationError(
                "content hash mismatch: blob metadata does not hash to its "
                "recorded artifact key (corrupt or tampered artifact)"
            )
        if (
            expected_signature is not None
            and exe.source_signature != expected_signature
        ):
            raise SerializationError(
                f"source-signature mismatch: expected {expected_signature!r}, "
                f"blob was compiled from {exe.source_signature!r}"
            )
        return exe

    # -- bytecode section -------------------------------------------------------
    def _serialize_bytecode(self) -> bytes:
        out = io.BytesIO()
        _write_varint(out, len(self.functions))
        for func in self.functions:
            _write_bytes(out, func.name.encode())
            _write_varint(out, func.num_params)
            _write_varint(out, func.register_count)
            _write_varint(out, len(func.instructions))
            for instr in func.instructions:
                _encode_instruction(out, instr)
        return out.getvalue()

    def _serialize_constants(self) -> bytes:
        out = io.BytesIO()
        _write_varint(out, len(self.constants))
        for const in self.constants:
            arr = const.numpy()
            _write_bytes(out, str(const.dtype).encode())
            _write_varint(out, arr.ndim)
            for d in arr.shape:
                _write_varint(out, d)
            _write_bytes(out, arr.tobytes())
        return out.getvalue()


# ---------------------------------------------------------------------------
# varint / framing helpers
# ---------------------------------------------------------------------------


def _write_varint(out: io.BytesIO, value: int) -> None:
    """LEB128 with zigzag so negative jump offsets encode compactly."""
    encoded = (value << 1) ^ (value >> 63) if value < 0 else value << 1
    while True:
        byte = encoded & 0x7F
        encoded >>= 7
        if encoded:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(buf: io.BytesIO) -> int:
    shift = 0
    result = 0
    while True:
        raw = buf.read(1)
        if not raw:
            raise SerializationError("truncated varint")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
    return (result >> 1) ^ -(result & 1)


def _write_bytes(out: io.BytesIO, data: bytes) -> None:
    _write_varint(out, len(data))
    out.write(data)


def _read_bytes(buf: io.BytesIO) -> bytes:
    length = _read_varint(buf)
    data = buf.read(length)
    if len(data) != length:
        raise SerializationError("truncated section")
    return data


def _write_device(out: io.BytesIO, device: Device) -> None:
    out.write(bytes((0 if device.kind is DeviceKind.CPU else 1,)))
    _write_varint(out, device.index)


def _read_device(buf: io.BytesIO) -> Device:
    kind = DeviceKind.CPU if buf.read(1)[0] == 0 else DeviceKind.GPU
    return Device(kind, _read_varint(buf))


# ---------------------------------------------------------------------------
# instruction encoding
# ---------------------------------------------------------------------------


def _encode_instruction(out: io.BytesIO, instr: ins.Instruction) -> None:
    out.write(bytes((int(instr.opcode),)))
    if isinstance(instr, ins.Move):
        _write_varint(out, instr.src)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.Ret):
        _write_varint(out, instr.result)
    elif isinstance(instr, ins.Invoke):
        _write_varint(out, instr.func_index)
        _write_varint(out, len(instr.args))
        for a in instr.args:
            _write_varint(out, a)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.InvokeClosure):
        _write_varint(out, instr.closure)
        _write_varint(out, len(instr.args))
        for a in instr.args:
            _write_varint(out, a)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.InvokePacked):
        _write_varint(out, instr.packed_index)
        _write_varint(out, instr.arity)
        _write_varint(out, instr.output_size)
        for a in instr.args:
            _write_varint(out, a)
        _write_device(out, instr.device)
        _write_bytes(out, instr.kind.encode())
        _write_varint(out, instr.stream)
    elif isinstance(instr, ins.AllocStorage):
        _write_varint(out, instr.allocation_size)
        _write_varint(out, instr.alignment)
        _write_device(out, instr.device)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.AllocTensor):
        _write_varint(out, instr.storage)
        _write_varint(out, instr.offset)
        _write_varint(out, len(instr.shape))
        for d in instr.shape:
            _write_varint(out, d)
        _write_bytes(out, instr.dtype.encode())
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.AllocTensorReg):
        _write_varint(out, instr.storage)
        _write_varint(out, instr.offset)
        _write_varint(out, instr.shape_register)
        _write_bytes(out, instr.dtype.encode())
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.AllocADT):
        _write_varint(out, instr.tag)
        _write_varint(out, instr.num_fields)
        for f in instr.fields:
            _write_varint(out, f)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.AllocClosure):
        _write_varint(out, instr.func_index)
        _write_varint(out, instr.num_captured)
        for c in instr.captured:
            _write_varint(out, c)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.GetField):
        _write_varint(out, instr.obj)
        _write_varint(out, instr.field_index)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.GetTag):
        _write_varint(out, instr.obj)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.If):
        _write_varint(out, instr.test)
        _write_varint(out, instr.target)
        _write_varint(out, instr.true_offset)
        _write_varint(out, instr.false_offset)
    elif isinstance(instr, ins.Goto):
        _write_varint(out, instr.pc_offset)
    elif isinstance(instr, ins.LoadConst):
        _write_varint(out, instr.const_index)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.LoadConsti):
        _write_varint(out, instr.value)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.DeviceCopy):
        _write_varint(out, instr.src)
        _write_varint(out, instr.dst)
        _write_device(out, instr.src_device)
        _write_device(out, instr.dst_device)
    elif isinstance(instr, ins.ShapeOf):
        _write_varint(out, instr.tensor)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.ReshapeTensor):
        _write_varint(out, instr.tensor)
        _write_varint(out, instr.newshape)
        _write_varint(out, instr.dst)
    elif isinstance(instr, ins.Fatal):
        _write_bytes(out, instr.message.encode())
    elif isinstance(instr, (ins.StreamEvent, ins.StreamWait)):
        _write_varint(out, instr.event_index)
        _write_device(out, instr.device)
        _write_varint(out, instr.stream)
    else:
        raise SerializationError(f"cannot encode {type(instr).__name__}")


def _decode_instruction(buf: io.BytesIO, version: int = VERSION) -> ins.Instruction:
    opcode = ins.Opcode(buf.read(1)[0])
    rv = lambda: _read_varint(buf)
    if opcode == ins.Opcode.MOVE:
        return ins.Move(rv(), rv())
    if opcode == ins.Opcode.RET:
        return ins.Ret(rv())
    if opcode == ins.Opcode.INVOKE:
        func_index = rv()
        args = tuple(rv() for _ in range(rv()))
        return ins.Invoke(func_index, args, rv())
    if opcode == ins.Opcode.INVOKE_CLOSURE:
        closure = rv()
        args = tuple(rv() for _ in range(rv()))
        return ins.InvokeClosure(closure, args, rv())
    if opcode == ins.Opcode.INVOKE_PACKED:
        packed_index, arity, output_size = rv(), rv(), rv()
        args = tuple(rv() for _ in range(arity))
        device = _read_device(buf)
        kind = _read_bytes(buf).decode()
        # Pre-v5 bytecode has no stream operand: everything is stream 0.
        stream = rv() if version >= 5 else 0
        return ins.InvokePacked(
            packed_index, arity, output_size, args, device, kind, stream
        )
    if opcode == ins.Opcode.ALLOC_STORAGE:
        return ins.AllocStorage(rv(), rv(), _read_device(buf), rv())
    if opcode == ins.Opcode.ALLOC_TENSOR:
        storage, offset = rv(), rv()
        shape = tuple(rv() for _ in range(rv()))
        dtype = _read_bytes(buf).decode()
        return ins.AllocTensor(storage, offset, shape, dtype, rv())
    if opcode == ins.Opcode.ALLOC_TENSOR_REG:
        storage, offset, shape_register = rv(), rv(), rv()
        dtype = _read_bytes(buf).decode()
        return ins.AllocTensorReg(storage, offset, shape_register, dtype, rv())
    if opcode == ins.Opcode.ALLOC_ADT:
        tag, num_fields = rv(), rv()
        fields = tuple(rv() for _ in range(num_fields))
        return ins.AllocADT(tag, num_fields, fields, rv())
    if opcode == ins.Opcode.ALLOC_CLOSURE:
        func_index, num_captured = rv(), rv()
        captured = tuple(rv() for _ in range(num_captured))
        return ins.AllocClosure(func_index, num_captured, captured, rv())
    if opcode == ins.Opcode.GET_FIELD:
        return ins.GetField(rv(), rv(), rv())
    if opcode == ins.Opcode.GET_TAG:
        return ins.GetTag(rv(), rv())
    if opcode == ins.Opcode.IF:
        return ins.If(rv(), rv(), rv(), rv())
    if opcode == ins.Opcode.GOTO:
        return ins.Goto(rv())
    if opcode == ins.Opcode.LOAD_CONST:
        return ins.LoadConst(rv(), rv())
    if opcode == ins.Opcode.LOAD_CONSTI:
        return ins.LoadConsti(rv(), rv())
    if opcode == ins.Opcode.DEVICE_COPY:
        src, dst = rv(), rv()
        return ins.DeviceCopy(src, dst, _read_device(buf), _read_device(buf))
    if opcode == ins.Opcode.SHAPE_OF:
        return ins.ShapeOf(rv(), rv())
    if opcode == ins.Opcode.RESHAPE_TENSOR:
        return ins.ReshapeTensor(rv(), rv(), rv())
    if opcode == ins.Opcode.FATAL:
        return ins.Fatal(_read_bytes(buf).decode())
    if opcode == ins.Opcode.STREAM_EVENT:
        return ins.StreamEvent(rv(), _read_device(buf), rv())
    if opcode == ins.Opcode.STREAM_WAIT:
        return ins.StreamWait(rv(), _read_device(buf), rv())
    raise SerializationError(f"cannot decode opcode {opcode}")


def _deserialize_bytecode(
    blob: bytes, version: int = VERSION
) -> Tuple[List[VMFunction], Dict[str, int]]:
    buf = io.BytesIO(blob)
    functions: List[VMFunction] = []
    index: Dict[str, int] = {}
    for _ in range(_read_varint(buf)):
        name = _read_bytes(buf).decode()
        num_params = _read_varint(buf)
        register_count = _read_varint(buf)
        count = _read_varint(buf)
        instructions = [_decode_instruction(buf, version) for _ in range(count)]
        index[name] = len(functions)
        functions.append(VMFunction(name, num_params, instructions, register_count))
    return functions, index


def _deserialize_constants(blob: bytes) -> List[NDArray]:
    buf = io.BytesIO(blob)
    out: List[NDArray] = []
    for _ in range(_read_varint(buf)):
        dtype = _read_bytes(buf).decode()
        ndim = _read_varint(buf)
        shape = tuple(_read_varint(buf) for _ in range(ndim))
        raw = _read_bytes(buf)
        arr = np.frombuffer(raw, dtype=to_numpy_dtype(dtype)).reshape(shape).copy()
        out.append(NDArray(arr))
    return out
