"""The VM's tagged object representation (§5.2).

Registers hold tagged objects — tensors, ADTs (tuples are tag-0 ADTs),
closures, storage blocks — or small Python ints (constructor tags and
immediates). Objects are reference counted so register moves are cheap
(pass-by-reference) while storage reclamation stays deterministic: when
the last register referencing a tensor is clobbered, its backing storage
refcount drops and the pooling allocator can recycle the buffer.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import VMError
from repro.tensor.device import Device
from repro.tensor.ndarray import NDArray
from repro.tensor.storage import Storage


class VMObject:
    """Base class; subclasses implement retain/release."""

    __slots__ = ()

    def retain(self) -> "VMObject":
        return self

    def release(self) -> None:
        pass


class StorageObj(VMObject):
    """A storage block with a reference count; freed via the allocator
    callback when the count reaches zero."""

    __slots__ = ("storage", "rc", "on_free")

    def __init__(self, storage: Storage, on_free: Optional[Callable[[Storage], None]] = None) -> None:
        self.storage = storage
        self.rc = 1
        self.on_free = on_free

    def retain(self) -> "StorageObj":
        self.rc += 1
        return self

    def release(self) -> None:
        self.rc -= 1
        if self.rc == 0 and self.on_free is not None:
            self.on_free(self.storage)

    @property
    def device(self) -> Device:
        return self.storage.device

    def __repr__(self) -> str:
        return f"StorageObj({self.storage!r}, rc={self.rc})"


class TensorObj(VMObject):
    """A tensor object; may be backed by a refcounted StorageObj (planner
    allocations) or stand alone (constants, inputs, copies)."""

    __slots__ = ("array", "storage_obj")

    def __init__(self, array: NDArray, storage_obj: Optional[StorageObj] = None) -> None:
        self.array = array
        self.storage_obj = storage_obj
        if storage_obj is not None:
            storage_obj.retain()

    @property
    def data(self) -> np.ndarray:
        return self.array.numpy()

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.array.shape

    @property
    def dtype(self) -> str:
        return self.array.dtype

    @property
    def device(self) -> Device:
        return self.array.device

    def retain(self) -> "TensorObj":
        # One storage ref per register slot holding this tensor: the
        # construction-time retain covers the first slot, each Move adds
        # one, each clobber releases one — balanced.
        if self.storage_obj is not None:
            self.storage_obj.retain()
        return self

    def release(self) -> None:
        if self.storage_obj is not None:
            self.storage_obj.release()

    def scalar(self):
        return self.array.item()

    def __repr__(self) -> str:
        return f"TensorObj(shape={self.shape}, dtype={self.dtype}, device={self.device})"


class ADTObj(VMObject):
    """An algebraic data type object: constructor tag + fields.
    Tuples are represented with ``tag == TUPLE_TAG``."""

    TUPLE_TAG = -1

    __slots__ = ("tag", "fields")

    def __init__(self, tag: int, fields: Sequence[VMObject]) -> None:
        self.tag = tag
        self.fields = list(fields)
        for f in self.fields:
            if isinstance(f, VMObject):
                f.retain()
            # Storage objects retained via their own rc; ints are values.

    def retain(self) -> "ADTObj":
        # ADTs are shared by reference; their fields were retained at
        # construction. Retaining the ADT re-retains fields so nested
        # release stays balanced.
        for f in self.fields:
            if isinstance(f, VMObject):
                f.retain()
        return self

    def release(self) -> None:
        for f in self.fields:
            if isinstance(f, VMObject):
                f.release()

    def __repr__(self) -> str:
        name = "Tuple" if self.tag == self.TUPLE_TAG else f"ADT<{self.tag}>"
        return f"{name}({len(self.fields)} fields)"


class ClosureObj(VMObject):
    """A closure: lowered VM function index + captured registers."""

    __slots__ = ("func_index", "captured")

    def __init__(self, func_index: int, captured: Sequence[VMObject]) -> None:
        self.func_index = func_index
        self.captured = list(captured)
        for c in self.captured:
            if isinstance(c, VMObject):
                c.retain()

    def retain(self) -> "ClosureObj":
        for c in self.captured:
            if isinstance(c, VMObject):
                c.retain()
        return self

    def release(self) -> None:
        for c in self.captured:
            if isinstance(c, VMObject):
                c.release()

    def __repr__(self) -> str:
        return f"ClosureObj(func={self.func_index}, captured={len(self.captured)})"


RegisterValue = Union[VMObject, int, None]


def retain_value(value: RegisterValue) -> RegisterValue:
    if isinstance(value, VMObject):
        return value.retain()
    return value


def release_value(value: RegisterValue) -> None:
    if isinstance(value, VMObject):
        value.release()


def as_tensor(value: RegisterValue, what: str = "operand") -> TensorObj:
    if not isinstance(value, TensorObj):
        raise VMError(f"{what}: expected a tensor object, got {type(value).__name__}")
    return value


def scalar_of(value: RegisterValue) -> int:
    """Coerce a register value to a Python scalar for If comparisons."""
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, TensorObj):
        return int(value.scalar())
    raise VMError(f"cannot read a scalar from {type(value).__name__}")
