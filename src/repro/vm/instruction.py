"""The VM instruction set — the 20 opcodes of Appendix A, Table A.1,
plus two scheduling opcodes (StreamEvent/StreamWait) for the AOT
multi-stream extension.

CISC-style, register-based: each instruction corresponds to a primitive IR
expression on tensors (allocation, kernel invocation, control flow), so
the dispatch loop executes very few instructions relative to kernel work
(§5.1). Registers are virtual and unbounded; instructions are variable
length (shape operands are inline).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.tensor.device import Device


class Opcode(enum.IntEnum):
    MOVE = 0
    RET = 1
    INVOKE = 2
    INVOKE_CLOSURE = 3
    INVOKE_PACKED = 4
    ALLOC_STORAGE = 5
    ALLOC_TENSOR = 6
    ALLOC_TENSOR_REG = 7
    ALLOC_ADT = 8
    ALLOC_CLOSURE = 9
    GET_FIELD = 10
    GET_TAG = 11
    IF = 12
    GOTO = 13
    LOAD_CONST = 14
    LOAD_CONSTI = 15
    DEVICE_COPY = 16
    SHAPE_OF = 17
    RESHAPE_TENSOR = 18
    FATAL = 19
    STREAM_EVENT = 20
    STREAM_WAIT = 21


@dataclass(frozen=True)
class Instruction:
    opcode = None  # overridden per class


@dataclass(frozen=True)
class Move(Instruction):
    """Moves data from one register to another (refcounted, cheap)."""

    src: int
    dst: int
    opcode = Opcode.MOVE


@dataclass(frozen=True)
class Ret(Instruction):
    """Returns the object in `result` to the caller's register."""

    result: int
    opcode = Opcode.RET


@dataclass(frozen=True)
class Invoke(Instruction):
    """Invokes a global VM function."""

    func_index: int
    args: Tuple[int, ...]
    dst: int
    opcode = Opcode.INVOKE


@dataclass(frozen=True)
class InvokeClosure(Instruction):
    """Invokes a closure (captured registers are appended to the args)."""

    closure: int
    args: Tuple[int, ...]
    dst: int
    opcode = Opcode.INVOKE_CLOSURE


@dataclass(frozen=True)
class InvokePacked(Instruction):
    """Invokes an optimized operator kernel (or compiled shape function).

    ``args`` holds input registers followed by output registers (in-out
    calling convention of ``invoke_mut``); ``kind`` distinguishes compute
    kernels from shape functions / host scalar kernels for placement and
    profiling (Table 4's kernel-vs-others split).
    """

    packed_index: int
    arity: int
    output_size: int
    args: Tuple[int, ...]
    device: Device
    kind: str = "compute"
    # Device stream this kernel is enqueued on — assigned ahead of time
    # by the static scheduler (repro.vm.schedule); 0 for unscheduled
    # builds, which reproduces the single-lane model exactly.
    stream: int = 0
    opcode = Opcode.INVOKE_PACKED


@dataclass(frozen=True)
class AllocStorage(Instruction):
    """Allocates a storage block on a device; size read from a register."""

    allocation_size: int  # register holding an int64 scalar
    alignment: int
    device: Device
    dst: int
    opcode = Opcode.ALLOC_STORAGE


@dataclass(frozen=True)
class AllocTensor(Instruction):
    """Allocates a tensor with a static shape from a storage block."""

    storage: int
    offset: int  # register holding an int64 scalar
    shape: Tuple[int, ...]
    dtype: str
    dst: int
    opcode = Opcode.ALLOC_TENSOR


@dataclass(frozen=True)
class AllocTensorReg(Instruction):
    """Allocates a tensor whose shape is read from a register at runtime."""

    storage: int
    offset: int
    shape_register: int
    dtype: str
    dst: int
    opcode = Opcode.ALLOC_TENSOR_REG


@dataclass(frozen=True)
class AllocADT(Instruction):
    """Allocates an algebraic data type object (tuples use tag 0)."""

    tag: int
    num_fields: int
    fields: Tuple[int, ...]
    dst: int
    opcode = Opcode.ALLOC_ADT


@dataclass(frozen=True)
class AllocClosure(Instruction):
    """Allocates a closure over a lowered VM function."""

    func_index: int
    num_captured: int
    captured: Tuple[int, ...]
    dst: int
    opcode = Opcode.ALLOC_CLOSURE


@dataclass(frozen=True)
class GetField(Instruction):
    """Gets the value at an index from an ADT/tuple object."""

    obj: int
    field_index: int
    dst: int
    opcode = Opcode.GET_FIELD


@dataclass(frozen=True)
class GetTag(Instruction):
    """Gets the constructor tag of an ADT object."""

    obj: int
    dst: int
    opcode = Opcode.GET_TAG


@dataclass(frozen=True)
class If(Instruction):
    """Jumps to true/false offset depending on `test == target`."""

    test: int
    target: int
    true_offset: int
    false_offset: int
    opcode = Opcode.IF


@dataclass(frozen=True)
class Goto(Instruction):
    """Unconditionally jumps by a pc offset."""

    pc_offset: int
    opcode = Opcode.GOTO


@dataclass(frozen=True)
class LoadConst(Instruction):
    """Loads a constant from the executable's constant pool."""

    const_index: int
    dst: int
    opcode = Opcode.LOAD_CONST


@dataclass(frozen=True)
class LoadConsti(Instruction):
    """Loads an immediate integer."""

    value: int
    dst: int
    opcode = Opcode.LOAD_CONSTI


@dataclass(frozen=True)
class DeviceCopy(Instruction):
    """Copies a tensor between devices."""

    src: int
    dst: int
    src_device: Device
    dst_device: Device
    opcode = Opcode.DEVICE_COPY


@dataclass(frozen=True)
class ShapeOf(Instruction):
    """Retrieves the shape of a tensor as an int64 vector."""

    tensor: int
    dst: int
    opcode = Opcode.SHAPE_OF


@dataclass(frozen=True)
class ReshapeTensor(Instruction):
    """Assigns a new shape to a tensor without altering its data."""

    tensor: int
    newshape: int  # register holding the shape vector
    dst: int
    opcode = Opcode.RESHAPE_TENSOR


@dataclass(frozen=True)
class Fatal(Instruction):
    """Raises a fatal error in the VM."""

    message: str = "fatal"
    opcode = Opcode.FATAL


@dataclass(frozen=True)
class StreamEvent(Instruction):
    """Records a sync event on a device stream (``cudaEventRecord``):
    snapshots when everything enqueued on the stream so far will have
    retired, into the per-run event table at ``event_index``."""

    event_index: int
    device: Device
    stream: int
    opcode = Opcode.STREAM_EVENT


@dataclass(frozen=True)
class StreamWait(Instruction):
    """Makes a device stream wait for a recorded event
    (``cudaStreamWaitEvent``): kernels enqueued on ``stream`` after this
    instruction start only once the event has fired. Waiting on an event
    that was never recorded (its producer sat on a skipped control-flow
    path) is a no-op — if the producer did not run, there is nothing to
    wait for."""

    event_index: int
    device: Device
    stream: int
    opcode = Opcode.STREAM_WAIT
