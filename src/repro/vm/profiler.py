"""VM profiling: the kernel-vs-others breakdown of Table 4.

``kernel_time_us`` accumulates modeled kernel durations (device busy
time); everything else — instruction dispatch, shape functions, memory
allocation, data movement — is "other instructions". On a GPU platform
the host-side "others" overlap with asynchronous kernel execution, so the
end-to-end overhead they contribute is ``elapsed - kernel_busy``, which
§6.3 observes to be negligible there.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class VMProfile:
    runs: int = 0
    instruction_counts: Counter = field(default_factory=Counter)
    kernel_time_us: float = 0.0
    kernel_invocations: int = 0
    shape_func_time_us: float = 0.0
    shape_func_invocations: int = 0
    host_scalar_time_us: float = 0.0
    alloc_time_us: float = 0.0
    copy_time_us: float = 0.0
    dispatch_time_us: float = 0.0
    impl_counts: Counter = field(default_factory=Counter)
    # Invocations per fused-kernel name ("fused_nn.batch_dense+..."):
    # lets callers count GEMM launches per tier — the batched tier's
    # acceptance check is one batched GEMM per member-wise GEMM site.
    kernel_counts: Counter = field(default_factory=Counter)
    # Multi-stream accounting (repro.vm.schedule): device busy time and
    # launches per stream id, plus the sync-primitive traffic. On an
    # unscheduled build everything lands on stream 0 and the sync
    # counters stay 0.
    stream_kernel_us: Counter = field(default_factory=Counter)
    stream_kernel_invocations: Counter = field(default_factory=Counter)
    sync_events: int = 0
    sync_waits: int = 0
    # Modeled stream-stall time actually incurred by waits (an event
    # that already fired stalls nothing, like the real API).
    sync_stall_us: float = 0.0

    def record_run(self) -> None:
        self.runs += 1

    def record_instruction(self, opcode_name: str, dispatch_us: float) -> None:
        self.instruction_counts[opcode_name] += 1
        self.dispatch_time_us += dispatch_us

    def record_kernel(
        self, duration_us: float, impl: str, name: str = "?", stream: int = 0
    ) -> None:
        self.kernel_time_us += duration_us
        self.kernel_invocations += 1
        self.impl_counts[impl] += 1
        self.kernel_counts[name] += 1
        self.stream_kernel_us[stream] += duration_us
        self.stream_kernel_invocations[stream] += 1

    def record_sync_event(self) -> None:
        self.sync_events += 1

    def record_sync_wait(self, stall_us: float) -> None:
        self.sync_waits += 1
        self.sync_stall_us += stall_us

    def gemm_invocations(self, ops=None) -> int:
        """Kernel launches whose fused group contains a GEMM-class op
        (defaults to the cost model's authoritative GEMM_OPS set)."""
        if ops is None:
            from repro.codegen.workload import GEMM_OPS as ops
        return sum(
            count
            for name, count in self.kernel_counts.items()
            if any(op in name for op in ops)
        )

    def record_shape_func(self, duration_us: float) -> None:
        self.shape_func_time_us += duration_us
        self.shape_func_invocations += 1

    def others_us(self, elapsed_us: float) -> float:
        """Latency not attributable to compute kernels (Table 4 'others')."""
        return max(0.0, elapsed_us - self.kernel_time_us)

    # merge/reset walk the dataclass fields so a new counter can never be
    # forgotten by one of them — adding a field keeps both correct (and
    # the reset/merge symmetry test covers every field generically).
    def merge(self, other: "VMProfile") -> None:
        for f in fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if isinstance(mine, Counter):
                mine.update(theirs)
            else:
                setattr(self, f.name, mine + theirs)

    def reset(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Counter):
                value.clear()
            else:
                setattr(self, f.name, type(value)())
