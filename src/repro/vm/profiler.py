"""VM profiling: the kernel-vs-others breakdown of Table 4.

``kernel_time_us`` accumulates modeled kernel durations (device busy
time); everything else — instruction dispatch, shape functions, memory
allocation, data movement — is "other instructions". On a GPU platform
the host-side "others" overlap with asynchronous kernel execution, so the
end-to-end overhead they contribute is ``elapsed - kernel_busy``, which
§6.3 observes to be negligible there.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class VMProfile:
    runs: int = 0
    instruction_counts: Counter = field(default_factory=Counter)
    kernel_time_us: float = 0.0
    kernel_invocations: int = 0
    shape_func_time_us: float = 0.0
    shape_func_invocations: int = 0
    host_scalar_time_us: float = 0.0
    alloc_time_us: float = 0.0
    copy_time_us: float = 0.0
    dispatch_time_us: float = 0.0
    impl_counts: Counter = field(default_factory=Counter)
    # Invocations per fused-kernel name ("fused_nn.batch_dense+..."):
    # lets callers count GEMM launches per tier — the batched tier's
    # acceptance check is one batched GEMM per member-wise GEMM site.
    kernel_counts: Counter = field(default_factory=Counter)

    def record_run(self) -> None:
        self.runs += 1

    def record_instruction(self, opcode_name: str, dispatch_us: float) -> None:
        self.instruction_counts[opcode_name] += 1
        self.dispatch_time_us += dispatch_us

    def record_kernel(self, duration_us: float, impl: str, name: str = "?") -> None:
        self.kernel_time_us += duration_us
        self.kernel_invocations += 1
        self.impl_counts[impl] += 1
        self.kernel_counts[name] += 1

    def gemm_invocations(self, ops=None) -> int:
        """Kernel launches whose fused group contains a GEMM-class op
        (defaults to the cost model's authoritative GEMM_OPS set)."""
        if ops is None:
            from repro.codegen.workload import GEMM_OPS as ops
        return sum(
            count
            for name, count in self.kernel_counts.items()
            if any(op in name for op in ops)
        )

    def record_shape_func(self, duration_us: float) -> None:
        self.shape_func_time_us += duration_us
        self.shape_func_invocations += 1

    def others_us(self, elapsed_us: float) -> float:
        """Latency not attributable to compute kernels (Table 4 'others')."""
        return max(0.0, elapsed_us - self.kernel_time_us)

    def merge(self, other: "VMProfile") -> None:
        self.runs += other.runs
        self.instruction_counts.update(other.instruction_counts)
        self.kernel_counts.update(other.kernel_counts)
        self.kernel_time_us += other.kernel_time_us
        self.kernel_invocations += other.kernel_invocations
        self.shape_func_time_us += other.shape_func_time_us
        self.shape_func_invocations += other.shape_func_invocations
        self.host_scalar_time_us += other.host_scalar_time_us
        self.alloc_time_us += other.alloc_time_us
        self.copy_time_us += other.copy_time_us
        self.dispatch_time_us += other.dispatch_time_us
        self.impl_counts.update(other.impl_counts)

    def reset(self) -> None:
        self.runs = 0
        self.instruction_counts.clear()
        self.impl_counts.clear()
        self.kernel_counts.clear()
        self.kernel_time_us = 0.0
        self.kernel_invocations = 0
        self.shape_func_time_us = 0.0
        self.shape_func_invocations = 0
        self.host_scalar_time_us = 0.0
        self.alloc_time_us = 0.0
        self.copy_time_us = 0.0
        self.dispatch_time_us = 0.0
