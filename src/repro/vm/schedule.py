"""AOT kernel dependency graphs and static multi-stream scheduling.

Nimble's runtime extension (following Kwon et al.'s *Nimble: Lightweight
and Parallel GPU Task Scheduling*): instead of enqueueing every kernel on
one device stream, the compiler builds the kernel dependency DAG *ahead
of time* from the bytecode's register def-use and storage aliasing,
assigns each device kernel to a stream, and inserts the minimal set of
cross-stream sync events (``StreamEvent``/``StreamWait`` — the modeled
``cudaEventRecord``/``cudaStreamWaitEvent``). At run time the interpreter
just replays the static schedule — no scheduling decisions on the hot
path, which is the whole point of doing it AOT.

Soundness rules (docs/scheduling.md):

* Only **straight-line** functions (no control flow, no calls) are
  scheduled. Anything with ``If``/``Goto``/``Invoke``/``InvokeClosure``/
  ``AllocClosure`` stays on stream 0 — its kernels keep the exact
  single-lane model.
* Only device (GPU) compute kernels are stream-assigned. Shape
  functions, host-scalar kernels and CPU compute run synchronously on
  the host and need no ordering edges.
* Dependencies: RAW through register producer sets (propagated through
  ``Move``/``AllocADT``/``GetField``/``ReshapeTensor``), WAR/WAW through
  storage tokens (one per ``AllocStorage`` site — the memory planner
  only coalesces *dead* storages, so token hazards are real).
* ``DeviceCopy`` is a model barrier: the interpreter syncs the source
  device before copying, so dependencies on anything older are already
  satisfied and need no events.
* A scheduled **non-entry** function is bracketed by an *entry fence*
  (its side streams wait on an event recorded on stream 0, ordering the
  body after whatever the caller had in flight) and an *exit join*
  (stream 0 waits on an event per side stream before ``Ret``), so a
  caller that loops or recurses over it — the LSTM cell — sees it as a
  stream-0 unit. The entry function is left unfenced; cross-run reuse
  is covered by the per-run device synchronization in ``VM.run`` and
  the serving layer's per-stream pool assumption.

Event minimization uses per-stream vector clocks: each stream tracks,
per other stream, the newest kernel it is transitively ordered after;
a wait is emitted only when a dependency is not already covered, one
event per producer kernel is shared by all its waiters, and a wait
merges the producer's snapshot so later dependencies ride on earlier
syncs for free.

Everything here only changes the *modeled* timeline. The interpreter
still executes kernels host-sequentially in program order, so outputs
are bitwise identical across stream counts by construction — the
differential suite asserts exactly that.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.vm import instruction as ins
from repro.vm.executable import Executable, VMFunction

# Any of these makes a function non-straight-line: control flow means a
# static event schedule could wait on a never-recorded event's *producer
# side effects*, and calls interleave another function's kernels into the
# middle of ours. Such functions keep the single-stream model.
_CONTROL_FLOW = (
    ins.If,
    ins.Goto,
    ins.Invoke,
    ins.InvokeClosure,
    ins.AllocClosure,
)


def is_straight_line(func: VMFunction) -> bool:
    """True if the function has no control flow and no calls — the class
    of functions the static scheduler is sound for."""
    return not any(isinstance(i, _CONTROL_FLOW) for i in func.instructions)


@dataclass
class KernelNode:
    """One device compute kernel in a function's dependency DAG."""

    id: int  # dense, in program order
    pos: int  # index into the function's instruction list
    instr: ins.InvokePacked
    # ids of kernels this one must be ordered after (RAW/WAR/WAW), with
    # anything already covered by a DeviceCopy barrier filtered out.
    deps: FrozenSet[int]
    stream: int = 0


def build_dependency_graph(func: VMFunction) -> List[KernelNode]:
    """Walk the bytecode once and recover the kernel dependency DAG.

    Tracks, per register, the set of kernel nodes whose results flow
    into it (RAW) and the set of storage tokens its value aliases
    (WAR/WAW); alias-introducing instructions propagate both.
    """
    producers: Dict[int, FrozenSet[int]] = defaultdict(frozenset)
    tokens: Dict[int, FrozenSet[int]] = defaultdict(frozenset)
    next_token = 0
    last_writer: Dict[int, int] = {}
    readers_since: Dict[int, Set[int]] = defaultdict(set)
    # Kernels with id <= barrier are complete from everyone's point of
    # view (a DeviceCopy synced the device); deps on them are dropped.
    barrier = -1
    nodes: List[KernelNode] = []

    def clear(dst: int) -> None:
        producers[dst] = frozenset()
        tokens[dst] = frozenset()

    for pos, instr in enumerate(func.instructions):
        if isinstance(instr, ins.AllocStorage):
            tok = next_token
            next_token += 1
            producers[instr.dst] = frozenset()
            tokens[instr.dst] = frozenset((tok,))
        elif isinstance(instr, (ins.AllocTensor, ins.AllocTensorReg)):
            producers[instr.dst] = producers[instr.storage]
            tokens[instr.dst] = tokens[instr.storage]
        elif isinstance(instr, ins.Move):
            producers[instr.dst] = producers[instr.src]
            tokens[instr.dst] = tokens[instr.src]
        elif isinstance(instr, ins.AllocADT):
            prod: FrozenSet[int] = frozenset()
            toks: FrozenSet[int] = frozenset()
            for f in instr.fields:
                prod |= producers[f]
                toks |= tokens[f]
            producers[instr.dst] = prod
            tokens[instr.dst] = toks
        elif isinstance(instr, ins.GetField):
            # Conservative: a field carries the whole ADT's provenance.
            producers[instr.dst] = producers[instr.obj]
            tokens[instr.dst] = tokens[instr.obj]
        elif isinstance(instr, ins.ReshapeTensor):
            producers[instr.dst] = producers[instr.tensor]
            tokens[instr.dst] = tokens[instr.tensor]
        elif isinstance(instr, ins.GetTag):
            clear(instr.dst)
        elif isinstance(instr, (ins.LoadConst, ins.LoadConsti, ins.ShapeOf)):
            clear(instr.dst)
        elif isinstance(instr, ins.DeviceCopy):
            # The interpreter syncs the source device before copying:
            # everything enqueued so far is retired by the time any
            # later kernel launches.
            barrier = len(nodes) - 1
            clear(instr.dst)
        elif isinstance(instr, ins.InvokePacked):
            num_inputs = instr.arity - instr.output_size
            in_regs = instr.args[:num_inputs]
            out_regs = instr.args[num_inputs:]
            if instr.kind == "compute" and instr.device.is_gpu:
                nid = len(nodes)
                deps: Set[int] = set()
                for r in in_regs:
                    deps |= producers[r]
                for r in out_regs:
                    for tok in tokens[r]:
                        w = last_writer.get(tok)
                        if w is not None:
                            deps.add(w)  # WAW
                        deps |= readers_since[tok]  # WAR
                for r in in_regs:
                    for tok in tokens[r]:
                        readers_since[tok].add(nid)
                for r in out_regs:
                    producers[r] = frozenset((nid,))
                    for tok in tokens[r]:
                        last_writer[tok] = nid
                        readers_since[tok] = set()
                nodes.append(
                    KernelNode(
                        nid,
                        pos,
                        instr,
                        frozenset(d for d in deps if d > barrier),
                    )
                )
            else:
                # Host-side kernel (shape func / host scalar / CPU
                # compute): runs synchronously, writes host memory —
                # no device ordering edges in or out.
                for r in out_regs:
                    producers[r] = frozenset()
    return nodes


def assign_streams(nodes: List[KernelNode], num_streams: int) -> None:
    """Greedy program-order stream assignment (deterministic).

    A kernel chains onto a stream whose *most recent* kernel is one of
    its dependencies (same-stream ordering is free — in-order streams
    need no event for it); with several such streams the lowest id wins.
    An independent kernel opens the least-loaded stream, ties to the
    lowest id.
    """
    last_on_stream: Dict[int, int] = {}
    load = [0] * num_streams
    for node in nodes:
        chain = [s for s, nid in last_on_stream.items() if nid in node.deps]
        if chain:
            stream = min(chain)
        else:
            stream = min(range(num_streams), key=lambda s: (load[s], s))
        node.stream = stream
        last_on_stream[stream] = node.id
        load[stream] += 1


@dataclass
class FunctionSchedule:
    """The scheduling decision for one function, exposed for tests and
    the study harness."""

    nodes: List[KernelNode]
    streams_used: Tuple[int, ...]
    num_events: int
    num_waits: int


def _plan_events(
    nodes: List[KernelNode], num_streams: int
) -> Tuple[Dict[int, List[ins.StreamEvent]], Dict[int, List[ins.StreamWait]], int, int]:
    """Vector-clock minimal event insertion.

    Returns (events to append after instruction pos, waits to prepend
    before instruction pos, number of events, number of waits).
    """
    events_after: Dict[int, List[ins.StreamEvent]] = defaultdict(list)
    waits_before: Dict[int, List[ins.StreamWait]] = defaultdict(list)
    event_of: Dict[int, int] = {}
    next_event = 0
    num_waits = 0
    # completed[s][t] = newest node id on stream t that stream s is
    # (transitively) ordered after; snapshot[d] = what d's stream knew
    # the moment d retired — what a wait on d's event teaches.
    completed: Dict[int, Dict[int, int]] = {s: {} for s in range(num_streams)}
    snapshot: Dict[int, Dict[int, int]] = {}
    for node in nodes:
        s = node.stream
        know = completed[s]
        for d in sorted(node.deps):
            dep = nodes[d]
            t = dep.stream
            if t == s:
                continue  # in-order stream: free
            if know.get(t, -1) >= d:
                continue  # already covered, transitively
            if d not in event_of:
                event_of[d] = next_event
                next_event += 1
                events_after[dep.pos].append(
                    ins.StreamEvent(event_of[d], dep.instr.device, t)
                )
            waits_before[node.pos].append(
                ins.StreamWait(event_of[d], node.instr.device, s)
            )
            num_waits += 1
            for t2, nid2 in snapshot[d].items():
                if know.get(t2, -1) < nid2:
                    know[t2] = nid2
        snap = dict(know)
        snap[s] = node.id
        snapshot[node.id] = snap
        know[s] = node.id
    return events_after, waits_before, next_event, num_waits


def schedule_function(
    func: VMFunction, num_streams: int, is_entry: bool
) -> Tuple[Optional[VMFunction], Optional[FunctionSchedule]]:
    """Schedule one straight-line function onto ``num_streams`` streams.

    Returns ``(new_function, schedule)``, or ``(None, None)`` when the
    function gains nothing (fewer than two device kernels, or the
    assignment keeps everything on stream 0) — callers leave it
    untouched so the single-stream bytecode stays byte-for-byte what
    the unscheduled compiler emits.
    """
    nodes = build_dependency_graph(func)
    if len(nodes) < 2:
        return None, None
    assign_streams(nodes, num_streams)
    used = sorted({n.stream for n in nodes})
    if used == [0]:
        return None, None
    events_after, waits_before, num_events, num_waits = _plan_events(
        nodes, num_streams
    )
    device = nodes[0].instr.device
    side_streams = [s for s in used if s != 0]

    prologue: List[ins.Instruction] = []
    if not is_entry and side_streams:
        # Entry fence: order the body's side streams after everything
        # the caller had pending on stream 0.
        fence = num_events
        num_events += 1
        prologue.append(ins.StreamEvent(fence, device, 0))
        for s in side_streams:
            prologue.append(ins.StreamWait(fence, device, s))
            num_waits += 1

    join: List[ins.Instruction] = []
    if not is_entry and side_streams:
        # Exit join: stream 0 waits for every side stream, so the caller
        # (which runs everything on stream 0) sees the function as one
        # stream-0 unit.
        for s in side_streams:
            ev = num_events
            num_events += 1
            join.append(ins.StreamEvent(ev, device, s))
            join.append(ins.StreamWait(ev, device, 0))
            num_waits += 1

    node_at = {n.pos: n for n in nodes}
    new_instrs: List[ins.Instruction] = list(prologue)
    joined = False
    for pos, instr in enumerate(func.instructions):
        if not joined and isinstance(instr, ins.Ret):
            new_instrs.extend(join)
            joined = True
        new_instrs.extend(waits_before.get(pos, ()))
        node = node_at.get(pos)
        if node is not None:
            instr = replace(instr, stream=node.stream)
        new_instrs.append(instr)
        new_instrs.extend(events_after.get(pos, ()))
    if not joined:
        new_instrs.extend(join)

    scheduled = VMFunction(
        func.name, func.num_params, new_instrs, func.register_count
    )
    summary = FunctionSchedule(nodes, tuple(used), num_events, num_waits)
    return scheduled, summary


def schedule_executable(
    exe: Executable, num_streams: int
) -> Dict[str, FunctionSchedule]:
    """Run the static scheduler over every schedulable function of an
    executable, in place.

    Sets ``exe.device_streams`` and ``exe.num_events`` (the run-time
    event-table size: the max any one function uses — scheduled
    functions cannot nest, so indices are reused across functions).
    With ``num_streams <= 1`` this is a guaranteed no-op: the bytecode
    is left untouched and the executable stays byte-identical to an
    unscheduled build.
    """
    if num_streams <= 1:
        exe.device_streams = 1
        exe.num_events = 0
        return {}
    entry_index = exe.func_index.get(exe.entry)
    schedules: Dict[str, FunctionSchedule] = {}
    max_events = 0
    for i, func in enumerate(exe.functions):
        if not is_straight_line(func):
            continue
        new_func, summary = schedule_function(
            func, num_streams, is_entry=(i == entry_index)
        )
        if new_func is not None and summary is not None:
            exe.functions[i] = new_func
            schedules[func.name] = summary
            max_events = max(max_events, summary.num_events)
    exe.device_streams = num_streams
    exe.num_events = max_events
    return schedules
