"""Serving demo: batched, shape-bucketed inference over the Nimble VM.

Compiles one dynamic-shape LSTM once, then serves a Poisson stream of
variable-length requests two ways — one-request-at-a-time (the paper's
single-inference regime) and through the batching server (`repro.serve`):
requests are bucketed by their dynamic dimension, batched under a latency
deadline, and fanned out across a pool of VM workers sharing the compiled
executable.

Everything runs on the virtual clock, so the throughput/latency numbers
printed here are deterministic: run the script twice, get the same bytes.

Run:  PYTHONPATH=src python examples/serving_demo.py
"""

from repro.hardware import nvidia_gpu
from repro.models.lstm import LSTMWeights, build_lstm_module
from repro.serve import InferenceServer, ServeConfig, lstm_traffic


def main():
    # One dynamic-length LSTM: main(x: Tensor[(Any, 64)]).
    weights = LSTMWeights.create(input_size=64, hidden_size=128, num_layers=1, seed=0)
    mod = build_lstm_module(weights)
    platform = nvidia_gpu()

    # MRPC-like sentence lengths arriving as a Poisson process.
    requests = lstm_traffic(32, input_size=64, mean_interarrival_us=50.0, seed=0)
    lengths = sorted({r.payload.shape[0] for r in requests})
    print(f"traffic: {len(requests)} requests, lengths {lengths[0]}..{lengths[-1]}")
    print()

    # Serial baseline: one worker, no batching.
    serial = InferenceServer(mod, platform, ServeConfig.serial())
    serial_report = serial.simulate(requests)
    print(serial_report.format("Serial dispatch (1 worker, batch size 1)"))
    print()

    # Batched serving: shape buckets, deadline batching, 4 VM workers.
    config = ServeConfig(
        max_batch_size=8,
        max_delay_us=4000.0,
        num_workers=4,
        bucket_granularity=8,
    )
    server = InferenceServer(mod, platform, config)
    report = server.simulate(requests)
    print(report.format("Batched serving (4 workers, shape-bucketed)"))
    print()

    speedup = report.throughput_rps / serial_report.throughput_rps
    print(f"throughput speedup: {speedup:.2f}x "
          f"({serial_report.throughput_rps:.0f} -> {report.throughput_rps:.0f} req/s)")
    print(f"p99 latency: {serial_report.p99_us:.0f} -> {report.p99_us:.0f} µs")
    print(f"buckets used: {report.bucket_keys}")


if __name__ == "__main__":
    main()
