"""Dynamic data structures: Tree-LSTM sentiment evaluation over a treebank.

Each input is a *different* binary parse tree — a per-input model topology
that static graph compilers cannot express. Nimble represents the tree as
an algebraic data type, evaluation as a recursive `match`, and the VM
executes it with GetTag/GetField + recursion (§5). This example runs an
SST-like treebank through the compiled model and compares against the
eager NumPy reference, then shows the latency gap against a PyTorch-style
eager framework (Table 2's experiment in miniature).

Run:  python examples/sentiment_treebank.py
"""

import numpy as np

import repro.nimble as nimble
from repro.baselines import EagerFramework
from repro.data import embedding_table, sst_like_trees
from repro.hardware import intel_cpu
from repro.models.tree_lstm import (
    TreeLSTMWeights,
    build_tree_lstm_module,
    tree_lstm_reference,
    tree_to_adt,
)
from repro.runtime.context import ExecutionContext
from repro.vm.interpreter import VirtualMachine


def main():
    platform = intel_cpu()
    weights = TreeLSTMWeights.create(input_size=300, hidden_size=150, seed=0)
    embeddings = embedding_table(vocab_size=8192, dim=300, seed=1)
    trees = sst_like_trees(8, seed=2)

    mod = build_tree_lstm_module(weights)
    exe, _ = nimble.build(mod, platform)
    ctx = ExecutionContext(platform)
    vm = VirtualMachine(exe, ctx)

    print("tree    leaves  depth   root-h[0]   matches-ref")
    total_tokens = 0
    for i, tree in enumerate(trees):
        out = vm.run(tree_to_adt(tree, embeddings))
        ref_h, _ = tree_lstm_reference(tree, embeddings, weights)
        ok = np.allclose(out.numpy(), ref_h, atol=1e-4)
        print(f"{i:4d}  {tree.num_leaves():7d} {tree.depth():6d} "
              f"{out.numpy()[0, 0]:11.5f}   {ok}")
        total_tokens += tree.num_leaves()

    nimble_us = ctx.elapsed_us / total_tokens
    eager = EagerFramework(platform).run_tree_lstm(trees, embeddings, weights)
    print(f"\nNimble : {nimble_us:8.1f} us/token")
    print(f"PyTorch-style eager: {eager.us_per_token:8.1f} us/token "
          f"({eager.us_per_token / nimble_us:.1f}x slower — Python recursion "
          f"builds the graph per node)")


if __name__ == "__main__":
    main()
