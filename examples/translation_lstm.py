"""Dynamic control flow: variable-length LSTM encoding (the seq2seq /
translation front half that motivates the paper's intro).

The sequence length is an `Any` dimension and the recurrence is a
recursive IR function guarded by `If` — compiled once, the executable
serves every sentence length without padding or per-length recompilation.
The example encodes an MRPC-like batch, prints the per-length latencies,
and shows the VM profile (kernel time vs "other instructions", the
Table 4 decomposition).

Run:  python examples/translation_lstm.py
"""

import numpy as np

import repro.nimble as nimble
from repro.data import mrpc_like_lengths
from repro.hardware import intel_cpu
from repro.models.lstm import LSTMWeights, build_lstm_module, lstm_reference
from repro.runtime.context import ExecutionContext
from repro.vm.interpreter import VirtualMachine


def main():
    platform = intel_cpu()
    weights = LSTMWeights.create(input_size=300, hidden_size=512, num_layers=1, seed=0)
    exe, report = nimble.build(build_lstm_module(weights), platform)
    print(f"compiled once: {report.num_kernels} kernels, "
          f"{report.num_instructions} instructions\n")

    ctx = ExecutionContext(platform)
    vm = VirtualMachine(exe, ctx)
    rng = np.random.RandomState(1)

    print("length   latency(us)   us/token")
    total_us = total_tokens = 0
    for length in sorted(mrpc_like_lengths(6, seed=3)):
        x = (rng.randn(length, 300) * 0.1).astype(np.float32)
        out, latency = vm.run_with_latency(x)
        assert np.allclose(out.numpy(), lstm_reference(x, weights), atol=1e-4)
        print(f"{length:6d} {latency:13.1f} {latency / length:10.1f}")
        total_us += latency
        total_tokens += length

    profile = vm.profile
    print(f"\noverall: {total_us / total_tokens:.1f} us/token")
    print(f"kernel time   : {profile.kernel_time_us:10.1f} us "
          f"({profile.kernel_invocations} invocations)")
    print(f"other instrs  : {profile.others_us(total_us):10.1f} us "
          f"(dispatch {profile.dispatch_time_us:.1f}, "
          f"alloc {profile.alloc_time_us:.1f})")
    print(f"impl selection: {dict(profile.impl_counts)}")


if __name__ == "__main__":
    main()
