"""Quickstart: compile and run a dynamic-shape model with Nimble.

Builds a small network whose input length is statically unknown (an `Any`
dimension), compiles it once through the full dynamic pipeline — type
inference with Any, fusion, manifest allocation, memory planning, device
placement, VM codegen — and runs the same executable at several different
input lengths. Also demonstrates executable serialization (the paper's
"compile once, deploy anywhere" artifact).

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.nimble as nimble
from repro.hardware import intel_cpu
from repro.ir import Any, Function, IRModule, TensorType, Var, const
from repro.ops import api
from repro.vm.executable import Executable
from repro.vm.interpreter import VirtualMachine


def main():
    # A two-layer MLP over a dynamic number of rows: Tensor[(Any, 32)].
    rng = np.random.RandomState(0)
    w1 = const(rng.randn(64, 32).astype(np.float32) * 0.1)
    w2 = const(rng.randn(8, 64).astype(np.float32) * 0.1)

    x = Var("x", TensorType((Any(), 32), "float32"))
    body = api.softmax(api.dense(api.relu(api.dense(x, w1)), w2))
    mod = IRModule.from_expr(Function([x], body))

    print("=== IR (before compilation) ===")
    print(mod.main)
    print()

    platform = intel_cpu()
    exe, report = nimble.build(mod, platform)
    print(f"compiled: {report.num_kernels} kernels, "
          f"{report.num_instructions} VM instructions, "
          f"{report.bytecode_bytes} B bytecode, "
          f"{report.kernel_code_bytes} B kernel code")
    if report.memory:
        print(f"memory planning: {report.memory.allocs_before} -> "
              f"{report.memory.allocs_after} storage allocations "
              f"({100 * report.memory.alloc_reduction:.0f}% fewer)")
    print()

    # One executable serves every input length — the paper's core claim.
    vm = VirtualMachine(exe)
    for length in (1, 7, 30):
        data = rng.randn(length, 32).astype(np.float32)
        out, latency_us = vm.run_with_latency(data)
        assert out.shape == (length, 8)
        print(f"len={length:3d}: output {out.shape}, "
              f"modeled latency {latency_us:8.1f} us")

    # Executables serialize to a single artifact (bytecode + constants +
    # kernels) and round-trip.
    blob = exe.save()
    reloaded = Executable.load(blob)
    out2 = VirtualMachine(reloaded).run(rng.randn(5, 32).astype(np.float32))
    print(f"\nserialized executable: {len(blob)} bytes; reloaded output "
          f"shape {out2.shape}")


if __name__ == "__main__":
    main()
