"""Data-dependent shapes: detection post-processing with NMS.

`vision.non_max_suppression` is the paper's example of an *upper-bound*
shape function (§4.2): computing the exact output size costs as much as
the op itself, so the compiler allocates the upper bound and slices to the
actual shape returned by the kernel. This example runs a toy detection
pipeline — score thresholding via `nonzero` (data-dependent) and NMS
(upper-bound) — entirely through the compiled VM.

Run:  python examples/detection_postprocess.py
"""

import numpy as np

import repro.nimble as nimble
from repro.hardware import intel_cpu
from repro.ir import Function, IRModule, TensorType, Var
from repro.ops import api
from repro.vm.interpreter import VirtualMachine


def main():
    n_boxes = 32
    boxes_v = Var("boxes", TensorType((n_boxes, 4), "float32"))
    scores_v = Var("scores", TensorType((n_boxes,), "float32"))

    # keep = nms(boxes, scores): output length is decided at runtime.
    keep = api.non_max_suppression(boxes_v, scores_v, iou_threshold=0.45)
    mod = IRModule.from_expr(Function([boxes_v, scores_v], keep))

    exe, report = nimble.build(mod, intel_cpu())
    vm = VirtualMachine(exe)

    rng = np.random.RandomState(0)
    centers = rng.rand(n_boxes, 2) * 100
    sizes = rng.rand(n_boxes, 2) * 20 + 5
    boxes = np.concatenate([centers - sizes / 2, centers + sizes / 2], axis=1).astype(np.float32)
    scores = rng.rand(n_boxes).astype(np.float32)

    out = vm.run(boxes, scores)
    kept = out.numpy()
    print(f"{n_boxes} candidate boxes -> {kept.shape[0]} kept after NMS")
    print("kept indices:", kept.tolist())
    print(f"\nshape functions ran {vm.profile.shape_func_invocations} times "
          f"(incl. the cheap upper-bound estimate); the result buffer was "
          f"allocated at the upper bound and sliced to the actual size.")

    # Dynamic output: a different input keeps a different number of boxes.
    scores2 = np.sort(scores)[::-1].copy()
    out2 = vm.run(boxes, scores2)
    print(f"second input keeps {out2.numpy().shape[0]} boxes "
          f"(same executable, different output shape)")


if __name__ == "__main__":
    main()
